"""Typed moves over decision points, with constraint-DAG invalidation sets.

Move taxonomy
-------------
``MoveTask(task, proc)``
    Reallocate one task; its slot in every derived order follows its
    unchanged sequence position.
``SwapTasks(a, b)``
    Exchange the processors of two tasks allocated to different
    processors.
``Reposition(task, before)``
    Move ``task`` earlier in the global sequence, to just before
    ``before``.  Only generated when no predecessor of ``task`` lies in
    the crossed window, so the sequence stays topological.
``AdjacentExchange(kind, proc, index)``
    Swap the adjacent entries at ``index``/``index + 1`` of a resource
    order (``kind`` in ``{"proc", "send", "recv"}``) — realized as the
    minimal :class:`Reposition` that inverts the two entries' canonical
    keys.

Every move maps a feasible :class:`~repro.search.point.SearchPoint` to a
feasible one (see the :mod:`point <repro.search.point>` docstring), and
:meth:`Move.invalidates` reports exactly which constraint-DAG nodes the
move touches: the nodes whose duration or predecessor list changes
(``dirty``) and the transfer nodes that disappear because their edge
became processor-local (``removed``).  The incremental evaluator
re-propagates times only downstream of these nodes.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass

from ..core.exceptions import SchedulingError
from ..core.platform import Platform
from .point import Node, SearchPoint, comm_node, task_node

TaskId = Hashable

#: ``(dirty nodes, removed nodes, patched resource lists)``.
Invalidation = tuple[set[Node], set[Node], dict[tuple, list]]


class Move:
    """A transformation of one decision point into a neighboring one."""

    def apply(self, point: SearchPoint) -> SearchPoint:
        raise NotImplementedError

    def touched(self, point: SearchPoint) -> tuple[TaskId, ...]:
        """Tasks whose allocation or relative order this move changes."""
        raise NotImplementedError

    def invalidates(
        self, point: SearchPoint, new_point: SearchPoint | None = None
    ) -> tuple[set[Node], set[Node]]:
        """Constraint-DAG nodes whose timing inputs this move changes."""
        if new_point is None:
            new_point = self.apply(point)
        dirty, removed, _ = invalidated(point, new_point, self.touched(point))
        return dirty, removed


@dataclass(frozen=True)
class MoveTask(Move):
    """Reallocate ``task`` to ``proc`` (sequence unchanged)."""

    task: TaskId
    proc: int

    def apply(self, point: SearchPoint) -> SearchPoint:
        if point.alloc[self.task] == self.proc:
            raise SchedulingError(f"task {self.task!r} is already on P{self.proc}")
        alloc = dict(point.alloc)
        alloc[self.task] = self.proc
        return point.replace(alloc=alloc)

    def touched(self, point: SearchPoint) -> tuple[TaskId, ...]:
        return (self.task,)


@dataclass(frozen=True)
class SwapTasks(Move):
    """Exchange the processors of tasks ``a`` and ``b``."""

    a: TaskId
    b: TaskId

    def apply(self, point: SearchPoint) -> SearchPoint:
        pa, pb = point.alloc[self.a], point.alloc[self.b]
        if pa == pb:
            raise SchedulingError(f"tasks {self.a!r}/{self.b!r} share P{pa}")
        alloc = dict(point.alloc)
        alloc[self.a], alloc[self.b] = pb, pa
        return point.replace(alloc=alloc)

    def touched(self, point: SearchPoint) -> tuple[TaskId, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class Reposition(Move):
    """Move ``task`` earlier in the sequence, to just before ``before``."""

    task: TaskId
    before: TaskId

    def feasible(self, point: SearchPoint) -> bool:
        """The sequence stays topological iff no predecessor of ``task``
        sits in the crossed window ``[pos(before), pos(task))``."""
        pos = point.pos
        lo, hi = pos[self.before], pos[self.task]
        if lo >= hi:
            return False
        return all(
            not (lo <= pos[u] < hi) for u in point.graph.as_maps().preds[self.task]
        )

    def apply(self, point: SearchPoint) -> SearchPoint:
        if not self.feasible(point):
            raise SchedulingError(
                f"repositioning {self.task!r} before {self.before!r} "
                f"would break the topological sequence"
            )
        sequence = list(point.sequence)
        sequence.remove(self.task)
        sequence.insert(point.pos[self.before], self.task)
        return point.replace(sequence=sequence)

    def touched(self, point: SearchPoint) -> tuple[TaskId, ...]:
        return (self.task,)


@dataclass(frozen=True)
class AdjacentExchange(Move):
    """Swap the adjacent entries ``index``/``index + 1`` of one resource
    order, via the minimal sequence reposition that inverts their keys."""

    kind: str  # "proc" | "send" | "recv"
    proc: int
    index: int

    def resolve(self, point: SearchPoint) -> Reposition | None:
        """The underlying reposition, or ``None`` when out of range /
        infeasible (the entries are dependence-ordered)."""
        order = point.resource_list(self.kind, self.proc)
        if not (0 <= self.index < len(order) - 1):
            return None
        first, second = order[self.index], order[self.index + 1]
        if self.kind == "proc":
            move = Reposition(second, first)
        else:
            (u1, v1, _), (u2, v2, _) = first, second
            # Keys are (pos(dst), pos(src)): inverting them means pulling
            # the later consumer before the earlier one, or — same
            # consumer — the later source before the earlier source.
            move = Reposition(v2, v1) if v1 != v2 else Reposition(u2, u1)
        return move if move.feasible(point) else None

    def apply(self, point: SearchPoint) -> SearchPoint:
        move = self.resolve(point)
        if move is None:
            raise SchedulingError(f"{self} is not applicable at this point")
        return move.apply(point)

    def touched(self, point: SearchPoint) -> tuple[TaskId, ...]:
        move = self.resolve(point)
        if move is None:
            raise SchedulingError(f"{self} is not applicable at this point")
        return move.touched(point)


# ----------------------------------------------------------------------
# invalidation
# ----------------------------------------------------------------------
def _prev_changed(old_list: list, new_list: list) -> list:
    """Entries of ``new_list`` whose immediate predecessor differs from
    their predecessor in ``old_list`` (including entries new to the list)."""
    old_prev: dict = {}
    prev = None
    for entry in old_list:
        old_prev[entry] = prev
        prev = entry
    changed = []
    prev = None
    for entry in new_list:
        if entry not in old_prev or old_prev[entry] != prev:
            changed.append(entry)
        prev = entry
    return changed


def invalidated(
    old: SearchPoint,
    new: SearchPoint,
    touched: tuple[TaskId, ...],
    old_lists: Callable[[str, int], list] | None = None,
) -> Invalidation:
    """Diff two points into the evaluator's re-propagation inputs.

    Returns ``(dirty, removed, new_lists)``: the constraint-DAG nodes
    whose duration or predecessor list changes, the transfer nodes whose
    edge became local, and the rebuilt resource orders keyed by
    ``(kind, proc)`` — exactly the lists that may differ between the two
    points.  ``old_lists`` lets a caller (the incremental evaluator)
    supply its cached base lists instead of recomputing them.
    """
    maps = old.graph.as_maps()
    if old_lists is None:
        old_lists = old.resource_list
    dirty: set[Node] = set()
    removed: set[Node] = set()

    for x in touched:
        dirty.add(task_node(x))
        for u in maps.preds[x]:
            node = comm_node(u, x)
            if new.is_remote(u, x):
                dirty.add(node)
            elif old.is_remote(u, x):
                removed.add(node)
        for w in maps.succs[x]:
            node = comm_node(x, w)
            if new.is_remote(x, w):
                dirty.add(node)
            elif old.is_remote(x, w):
                removed.add(node)
            if old.is_remote(x, w) != new.is_remote(x, w):
                # the consumer's predecessor switches between the source
                # task (local) and the transfer node (remote)
                dirty.add(task_node(w))

    def allocs(tasks) -> set[int]:
        out = set()
        for t in tasks:
            out.add(old.alloc[t])
            out.add(new.alloc[t])
        return out

    parents = {u for x in touched for u in maps.preds[x]}
    children = {w for x in touched for w in maps.succs[x]}
    affected = (
        ("proc", allocs(touched)),
        ("send", allocs(touched) | allocs(parents)),
        ("recv", allocs(touched) | allocs(children)),
    )
    new_lists: dict[tuple, list] = {}
    for kind, procs in affected:
        for p in sorted(procs):
            old_l = old_lists(kind, p)
            new_l = new.resource_list(kind, p)
            new_lists[(kind, p)] = new_l
            for entry in _prev_changed(old_l, new_l):
                dirty.add(task_node(entry) if kind == "proc" else ("comm", *entry))
    dirty -= removed
    return dirty, removed, new_lists


# ----------------------------------------------------------------------
# move proposal
# ----------------------------------------------------------------------
#: Resource kinds an :class:`AdjacentExchange` can target.
EXCHANGE_KINDS = ("proc", "send", "recv")


def propose(point: SearchPoint, platform: Platform, rng, tries: int = 8) -> Move | None:
    """Draw one feasible move, or ``None`` after ``tries`` failed draws.

    The draw mixes the three neighborhoods (reallocation-heavy, as
    allocation dominates one-port makespans) and is a pure function of
    the ``rng`` state, so seeded searches are fully deterministic.
    """
    sequence = point.sequence
    num_tasks = len(sequence)
    num_procs = platform.num_processors
    for _ in range(tries):
        draw = rng.random()
        if draw < 0.45 and num_procs > 1:
            task = sequence[rng.randrange(num_tasks)]
            proc = rng.randrange(num_procs - 1)
            if proc >= point.alloc[task]:
                proc += 1
            return MoveTask(task, proc)
        if draw < 0.65 and num_procs > 1:
            a = sequence[rng.randrange(num_tasks)]
            b = sequence[rng.randrange(num_tasks)]
            if a != b and point.alloc[a] != point.alloc[b]:
                return SwapTasks(a, b)
            continue
        kind = EXCHANGE_KINDS[rng.randrange(len(EXCHANGE_KINDS))]
        proc = rng.randrange(num_procs)
        order = point.resource_list(kind, proc)
        if len(order) < 2:
            continue
        move = AdjacentExchange(kind, proc, rng.randrange(len(order) - 1))
        if move.resolve(point) is not None:
            return move
    return None
