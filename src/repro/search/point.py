"""Decision points: the search-space representation of a one-port schedule.

A :class:`SearchPoint` is the pair ``(alloc, sequence)`` — an allocation
of every task to a processor plus one *global decision sequence*, a
topological order of all tasks.  Every resource order of a replayable
decision set is derived canonically from this pair:

* the execution order on processor ``p`` is the sequence restricted to
  the tasks allocated to ``p``;
* each remote edge ``u -> v`` is served by one direct transfer, and the
  send order of ``alloc(u)`` / receive order of ``alloc(v)`` sort
  transfers by ``(pos(dst), pos(src))`` — consumer-first, matching how
  the list heuristics book a task's incoming messages as a group when
  the task is scheduled.

This derivation makes every point *feasible by construction*: all
constraint-DAG edges strictly increase the key returned by
:meth:`SearchPoint.key`, so the constraint DAG of any point is acyclic
and :func:`repro.simulate.replay` always succeeds.  Moves in
:mod:`repro.search.neighborhood` therefore never have to be rejected
for creating circular resource orders.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Hashable, Iterable, Sequence

from ..core.exceptions import SchedulingError
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..simulate.replay import ReplayDecisions

TaskId = Hashable

#: Constraint-DAG node ids, matching :mod:`repro.simulate.replay`:
#: ``("task", v)`` or ``("comm", src, dst, 0)`` (direct transfers only).
Node = tuple


def task_node(v: TaskId) -> Node:
    return ("task", v)


def comm_node(u: TaskId, v: TaskId) -> Node:
    return ("comm", u, v, 0)


class SearchPoint:
    """One point of the search space (treat as immutable).

    Resource-order lists are computed lazily and cached per point, so
    repeated queries during move generation and incremental evaluation
    share one pass over the sequence.
    """

    __slots__ = ("graph", "alloc", "sequence", "pos", "_lists")

    def __init__(
        self, graph: TaskGraph, alloc: dict[TaskId, int], sequence: Sequence[TaskId]
    ) -> None:
        self.graph = graph
        self.alloc = alloc
        self.sequence = tuple(sequence)
        self.pos = {v: i for i, v in enumerate(self.sequence)}
        self._lists: dict[tuple, list] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "SearchPoint":
        """Extract the decision point of an existing (valid) schedule.

        The sequence orders tasks by start time, with ties broken by the
        graph's deterministic topological order — for a valid schedule
        this is itself topological (an edge's target never starts before
        its source).
        """
        graph = schedule.graph
        if len(schedule.placements) != graph.num_tasks:
            raise SchedulingError("cannot extract a point from a partial schedule")
        rank = {v: i for i, v in enumerate(graph.topological_order())}
        sequence = sorted(graph.tasks(), key=lambda v: (schedule.start_of(v), rank[v]))
        alloc = {v: p.proc for v, p in schedule.placements.items()}
        point = cls(graph, alloc, sequence)
        point.check()
        return point

    def replace(
        self,
        alloc: dict[TaskId, int] | None = None,
        sequence: Sequence[TaskId] | None = None,
    ) -> "SearchPoint":
        """A new point sharing this one's graph."""
        return SearchPoint(
            self.graph,
            self.alloc if alloc is None else alloc,
            self.sequence if sequence is None else sequence,
        )

    def check(self) -> None:
        """Raise unless the sequence is a complete topological order."""
        if set(self.pos) != set(self.alloc) or len(self.pos) != self.graph.num_tasks:
            raise SchedulingError("point does not cover every task exactly once")
        pos = self.pos
        for u, v in self.graph.edges():
            if pos[u] >= pos[v]:
                raise SchedulingError(
                    f"sequence is not topological: {u!r} at {pos[u]} "
                    f"does not precede {v!r} at {pos[v]}"
                )

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def key(self, node: Node) -> tuple:
        """Global topological key every constraint-DAG edge respects.

        Tasks sort at ``(pos(v), 1)``; the transfer of edge ``u -> v``
        at ``(pos(v), 0, pos(u))`` — after its source (``pos(u) < pos(v)``
        in a topological sequence), before its consumer.
        """
        if node[0] == "task":
            return (self.pos[node[1]], 1, 0)
        return (self.pos[node[2]], 0, self.pos[node[1]])

    def is_remote(self, u: TaskId, v: TaskId) -> bool:
        return self.alloc[u] != self.alloc[v]

    def proc_list(self, proc: int) -> list[TaskId]:
        """Execution order on ``proc``: the sequence restricted to it."""
        cached = self._lists.get(("proc", proc))
        if cached is None:
            alloc = self.alloc
            cached = [v for v in self.sequence if alloc[v] == proc]
            self._lists[("proc", proc)] = cached
        return cached

    def send_list(self, proc: int) -> list[tuple]:
        """Transfers leaving ``proc``, sorted by ``(pos(dst), pos(src))``."""
        cached = self._lists.get(("send", proc))
        if cached is None:
            succs = self.graph.as_maps().succs
            alloc, pos = self.alloc, self.pos
            keyed: list[tuple] = []
            for t in self.proc_list(proc):
                for w in succs[t]:
                    if alloc[w] != proc:
                        insort(keyed, (pos[w], pos[t], (t, w, 0)))
            cached = [entry[-1] for entry in keyed]
            self._lists[("send", proc)] = cached
        return cached

    def recv_list(self, proc: int) -> list[tuple]:
        """Transfers entering ``proc``, sorted by ``(pos(dst), pos(src))``."""
        cached = self._lists.get(("recv", proc))
        if cached is None:
            preds = self.graph.as_maps().preds
            alloc, pos = self.alloc, self.pos
            cached = []
            for t in self.proc_list(proc):
                row = sorted((pos[u], u) for u in preds[t] if alloc[u] != proc)
                cached.extend((u, t, 0) for _, u in row)
            self._lists[("recv", proc)] = cached
        return cached

    def resource_list(self, kind: str, proc: int) -> list:
        """Dispatch on ``kind`` in ``{"proc", "send", "recv"}``."""
        if kind == "proc":
            return self.proc_list(proc)
        if kind == "send":
            return self.send_list(proc)
        if kind == "recv":
            return self.recv_list(proc)
        raise ValueError(f"unknown resource kind {kind!r}")

    def remote_edges(self) -> Iterable[tuple[TaskId, TaskId]]:
        alloc = self.alloc
        return ((u, v) for u, v in self.graph.edges() if alloc[u] != alloc[v])

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_decisions(self, processors: Iterable[int] | None = None) -> ReplayDecisions:
        """The canonical :class:`ReplayDecisions` of this point."""
        if processors is None:
            processors = sorted(set(self.alloc.values()))
        procs = list(processors)
        return ReplayDecisions(
            alloc=dict(self.alloc),
            proc_order={p: list(self.proc_list(p)) for p in procs},
            send_order={p: list(self.send_list(p)) for p in procs},
            recv_order={p: list(self.recv_list(p)) for p in procs},
            hops={(u, v, 0): (self.alloc[u], self.alloc[v]) for u, v in self.remote_edges()},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchPoint(tasks={len(self.sequence)}, "
            f"procs={len(set(self.alloc.values()))})"
        )
