"""Order-preserving replay simulation of one-port schedules.

:func:`replay` routes direct-transfer decision sets through the flat
integer kernel (:mod:`repro.kernel`); :func:`replay_object` is the
retained object-level reference used for routed multi-hop schedules and
as the oracle of the kernel cross-check suite.
"""

from .replay import (
    ReplayDecisions,
    extract_decisions,
    replay,
    replay_object,
    replay_schedule,
)

__all__ = [
    "ReplayDecisions",
    "extract_decisions",
    "replay",
    "replay_object",
    "replay_schedule",
]
