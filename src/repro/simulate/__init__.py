"""Order-preserving replay simulation of one-port schedules."""

from .replay import ReplayDecisions, extract_decisions, replay, replay_schedule

__all__ = ["ReplayDecisions", "extract_decisions", "replay", "replay_schedule"]
