"""Order-preserving replay: independent reconstruction of schedule times.

A one-port schedule is fully determined by its *decisions* — the
allocation ``alloc(v)``, the execution order on each processor, and the
transfer order on each send and each receive port.  Given only those
decisions, the earliest-start times satisfy a simple recurrence (each
activity starts when its dependence and resource predecessors finish),
solvable in one topological pass over the *constraint DAG*:

* precedence edges — parent task → its outgoing transfer → child task
  (or parent → child directly when co-located);
* processor edges — consecutive tasks in a processor's order;
* port edges — consecutive transfers in a send port's order and in a
  receive port's order.

:func:`replay_schedule` extracts the decisions from an existing
schedule and re-derives all times from scratch.  Because the original
times are one feasible solution of the same constraints and the replay
computes the component-wise *least* solution, the replayed schedule

* is valid under the same model,
* starts every activity no later than the original, and
* never increases the makespan.

The test-suite uses this as an end-to-end cross-check on every
heuristic (a timing bug in a heuristic that still passes the validator
would show up as a replay mismatch), and `tighten=True` gives users a
free post-pass that compacts any schedule without changing a single
decision.

Two implementations compute the same least solution:

* the **kernel path** — decision sets whose transfers are all direct
  (``hop == 0``, one transfer per remote edge: every one-port schedule
  on a fully connected platform) compile to the flat integer arrays of
  :mod:`repro.kernel` and propagate in one pass over int-indexed lists;
* the **object path** (:func:`replay_object`) — the original
  dict-of-tuples implementation, retained for multi-hop routed
  schedules and as the reference the kernel is fuzz-checked against
  (both produce bit-identical floats: same ``max`` over the same
  operands, same single addition per activity).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from ..core.exceptions import SchedulingError
from ..core.platform import Platform
from ..core.schedule import CommEvent, Schedule, TaskPlacement
from ..core.taskgraph import TaskGraph
from ..core.tolerance import time_tol
from ..kernel import TimedKernel, compile_statics
from ..kernel.backends import current_backend
from ..kernel.timed import KernelIneligible

TaskId = Hashable

#: Constraint-DAG node ids: ("task", v) or ("comm", src, dst, hop).
Node = tuple


@dataclass
class ReplayDecisions:
    """The decision content of a schedule, stripped of all times."""

    alloc: dict[TaskId, int]
    proc_order: dict[int, list[TaskId]]
    send_order: dict[int, list[tuple]]
    recv_order: dict[int, list[tuple]]
    #: (src, dst, hop) -> (from_proc, to_proc); identifies each transfer.
    hops: dict[tuple, tuple[int, int]] = field(default_factory=dict)


def extract_decisions(schedule: Schedule) -> ReplayDecisions:
    """Pull allocation and all resource orders out of a schedule.

    Every order is sorted under a *total* deterministic key — time
    first, then the full identity of the activity (processors, interned
    task indices, hop) — so two schedules with identical content but
    different event insertion order extract identical decisions.
    Simultaneous transfers (or zero-width activities) would otherwise
    tie-break on list order and leak schedule-construction history into
    campaign cache keys and search starting points.
    """
    index = schedule.graph.as_maps().index
    alloc = {t: p.proc for t, p in schedule.placements.items()}
    proc_order: dict[int, list[TaskId]] = {}
    for proc in schedule.platform.processors:
        row = schedule.tasks_on(proc)
        row.sort(key=lambda p: (p.start, p.finish, index[p.task]))
        proc_order[proc] = [p.task for p in row]
    send_order: dict[int, list[tuple]] = {p: [] for p in schedule.platform.processors}
    recv_order: dict[int, list[tuple]] = {p: [] for p in schedule.platform.processors}
    hops: dict[tuple, tuple[int, int]] = {}
    events = sorted(
        schedule.comm_events,
        key=lambda e: (
            e.start,
            e.finish,
            e.src_proc,
            e.dst_proc,
            index[e.src_task],
            index[e.dst_task],
            e.hop,
        ),
    )
    for e in events:
        key = (e.src_task, e.dst_task, e.hop)
        if key in hops:
            raise SchedulingError(f"duplicate transfer {key} in schedule")
        hops[key] = (e.src_proc, e.dst_proc)
        send_order[e.src_proc].append(key)
        recv_order[e.dst_proc].append(key)
    return ReplayDecisions(alloc, proc_order, send_order, recv_order, hops)


def replay(
    graph: TaskGraph,
    platform: Platform,
    decisions: ReplayDecisions,
    heuristic: str = "replay",
) -> Schedule:
    """Least feasible times for the given decisions (see module docstring)."""
    statics = compile_statics(graph, platform)
    try:
        kern = TimedKernel.from_decisions(statics, decisions)
    except KernelIneligible:
        # multi-hop or unknown-edge transfers: outside the kernel's
        # domain, handled by the object-level reference implementation
        return replay_object(graph, platform, decisions, heuristic)
    current_backend().propagate(kern)

    out = Schedule(graph, platform, model="one-port", heuristic=heuristic)
    n = statics.num_tasks
    start, finish = kern.start, kern.finish
    edata = statics.edata
    # tuple.__new__ skips the NamedTuple keyword machinery; this loop
    # builds the entire output schedule and dominates the replay profile
    new = tuple.__new__
    out.comm_events = [
        new(CommEvent, (key[0], key[1], a, b, start[n + e], finish[n + e], edata[e], 0))
        for e, (key, (a, b)) in zip(kern.hop_list, decisions.hops.items())
    ]
    out.placements = {
        v: new(TaskPlacement, (v, p, s, f))
        for v, p, s, f in zip(statics.tasks, kern.alloc, start, finish)
    }
    return out


def replay_object(
    graph: TaskGraph,
    platform: Platform,
    decisions: ReplayDecisions,
    heuristic: str = "replay",
) -> Schedule:
    """Object-level reference replay (handles multi-hop routed chains).

    :func:`replay` routes every direct-transfer decision set through the
    flat kernel; this retained implementation serves routed schedules
    and acts as the independent oracle of the kernel cross-check suite.
    """
    maps = graph.as_maps()
    preds: dict[Node, list[Node]] = {}

    def task_node(v) -> Node:
        return ("task", v)

    def comm_node(key) -> Node:
        return ("comm", *key)

    # durations
    duration: dict[Node, float] = {}
    for v in graph.tasks():
        if v not in decisions.alloc:
            raise SchedulingError(f"decisions missing task {v!r}")
        duration[task_node(v)] = platform.exec_time(
            maps.weight[v], decisions.alloc[v]
        )
        preds[task_node(v)] = []
    for key, (a, b) in decisions.hops.items():
        src, dst, hop = key
        duration[comm_node(key)] = platform.comm_time(maps.data[(src, dst)], a, b)
        preds[comm_node(key)] = []

    # precedence: group hop chains per graph edge
    chains: dict[tuple, list[tuple]] = {}
    for key in decisions.hops:
        chains.setdefault((key[0], key[1]), []).append(key)
    for (src, dst), keys in chains.items():
        keys.sort(key=lambda k: k[2])
        if [k[2] for k in keys] != list(range(len(keys))):
            raise SchedulingError(f"edge {src!r}->{dst!r}: non-contiguous hops")
        preds[comm_node(keys[0])].append(task_node(src))
        for a, b in zip(keys, keys[1:]):
            preds[comm_node(b)].append(comm_node(a))
        preds[task_node(dst)].append(comm_node(keys[-1]))
    for u, v in graph.edges():
        if decisions.alloc[u] == decisions.alloc[v]:
            if (u, v) in chains:
                raise SchedulingError(f"edge {u!r}->{v!r} is local but has transfers")
            preds[task_node(v)].append(task_node(u))
        elif (u, v) not in chains:
            raise SchedulingError(f"remote edge {u!r}->{v!r} has no transfer")

    # resource orders
    for proc, tasks in decisions.proc_order.items():
        for a, b in zip(tasks, tasks[1:]):
            preds[task_node(b)].append(task_node(a))
    for orders in (decisions.send_order, decisions.recv_order):
        for proc, keys in orders.items():
            for a, b in zip(keys, keys[1:]):
                preds[comm_node(b)].append(comm_node(a))

    # longest-path pass (Kahn) over the constraint DAG
    indeg = {n: 0 for n in preds}
    succs: dict[Node, list[Node]] = {n: [] for n in preds}
    for node, plist in preds.items():
        for p in plist:
            succs[p].append(node)
            indeg[node] += 1
    ready = [n for n, d in indeg.items() if d == 0]
    start: dict[Node, float] = {}
    finish: dict[Node, float] = {}
    done = 0
    while ready:
        node = ready.pop()
        s = max((finish[p] for p in preds[node]), default=0.0)
        start[node] = s
        finish[node] = s + duration[node]
        done += 1
        for nxt in succs[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if done != len(preds):
        raise SchedulingError(
            "constraint DAG has a cycle: the decision orders are inconsistent"
        )

    out = Schedule(graph, platform, model="one-port", heuristic=heuristic)
    for key, (a, b) in decisions.hops.items():
        node = comm_node(key)
        src, dst, hop = key
        out.record_comm(
            src, dst, a, b, start[node], duration[node], maps.data[(src, dst)], hop
        )
    for v in graph.tasks():
        node = task_node(v)
        out.place(v, decisions.alloc[v], start[node], finish[node])
    return out


def replay_schedule(schedule: Schedule, tighten: bool = True) -> Schedule:
    """Re-derive a schedule's times from its own decisions.

    With ``tighten=True`` (default) this is a free compaction pass:
    the result keeps every decision of the input but starts each
    activity as early as the decision orders allow, so its makespan is
    less than or equal to the input's.

    With ``tighten=False`` the replay is used purely as a validator:
    the decisions are reconstructed and re-timed, every original time
    is checked to be no earlier than its least feasible time (raising
    :class:`~repro.core.exceptions.SchedulingError` otherwise), and a
    copy of the schedule carrying the *original* times and heuristic
    label is returned.  Comparisons use the scale-aware shared epsilon
    (:func:`repro.core.tolerance.time_tol`), so accumulated float error
    on long transfer chains never spuriously rejects a schedule.
    """
    decisions = extract_decisions(schedule)
    out = replay(
        schedule.graph,
        schedule.platform,
        decisions,
        heuristic=f"replay({schedule.heuristic})",
    )
    if tighten:
        return out
    for task, placement in schedule.placements.items():
        least = out.start_of(task)
        if placement.start < least - time_tol(placement.start, least):
            raise SchedulingError(
                f"task {task!r} starts at {placement.start}, before its "
                f"least feasible time {least} under the schedule's own decisions"
            )
    least_comm = {(e.src_task, e.dst_task, e.hop): e.start for e in out.comm_events}
    for event in schedule.comm_events:
        least = least_comm[(event.src_task, event.dst_task, event.hop)]
        if event.start < least - time_tol(event.start, least):
            raise SchedulingError(
                f"transfer {event.src_task!r}->{event.dst_task!r} starts at "
                f"{event.start}, before its least feasible time {least}"
            )
    checked = Schedule(
        schedule.graph,
        schedule.platform,
        model=schedule.model,
        heuristic=schedule.heuristic,
    )
    checked.placements = dict(schedule.placements)
    checked.comm_events = list(schedule.comm_events)
    return checked
