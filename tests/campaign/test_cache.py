"""ResultCache: JSONL persistence, resume semantics, corruption tolerance."""

import json

from repro.campaign import ResultCache


def cell_dict(**overrides) -> dict:
    base = dict(
        figure="f",
        testbed="lu",
        size=5,
        num_tasks=15,
        heuristic="heft",
        model="one-port",
        makespan=10.0,
        speedup=2.0,
        num_comms=3,
        total_comm_time=4.0,
        utilization=0.5,
        lower_bound=8.0,
        runtime_s=0.1,
    )
    base.update(overrides)
    return base


class TestRoundTrip:
    def test_put_get_reload(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put("k1", cell_dict(), payload={"graph": "g"})
        cache.put("k2", cell_dict(speedup=3.0))
        assert cache.get("k1")["speedup"] == 2.0
        assert "k2" in cache

        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 2
        assert reloaded.get("k2")["speedup"] == 3.0
        assert reloaded.keys() == {"k1", "k2"}

    def test_records_are_appended_jsonl(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", cell_dict())
        cache.put("b", cell_dict())
        lines = cache.path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["key"] for line in lines} == {"a", "b"}

    def test_last_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", cell_dict(speedup=1.0))
        cache.put("k", cell_dict(speedup=9.0))
        assert cache.get("k")["speedup"] == 9.0
        assert ResultCache(tmp_path).get("k")["speedup"] == 9.0


class TestResilience:
    def test_torn_tail_is_skipped(self, tmp_path):
        """A crash mid-append leaves a truncated last line: loading must
        keep every complete record and drop the torn one."""
        cache = ResultCache(tmp_path)
        cache.put("good", cell_dict())
        with cache.path.open("a") as fh:
            fh.write('{"key": "torn", "cell": {"speedu')  # no newline, no close
        reloaded = ResultCache(tmp_path)
        assert reloaded.keys() == {"good"}
        # and the reloaded cache can still append past the torn tail
        reloaded.put("next", cell_dict())
        assert ResultCache(tmp_path).keys() == {"good", "next"}

    def test_non_record_lines_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        with cache.path.open("a") as fh:
            fh.write("\n")
            fh.write(json.dumps({"not": "a record"}) + "\n")
            fh.write(json.dumps({"key": 5, "cell": {}}) + "\n")  # bad key type
        cache.put("k", cell_dict())
        assert ResultCache(tmp_path).keys() == {"k"}

    def test_missing_key_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("absent") is None
