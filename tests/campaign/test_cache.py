"""ResultCache: JSONL persistence, resume semantics, corruption tolerance."""

import json

from repro.campaign import ResultCache, merge_caches


def cell_dict(**overrides) -> dict:
    base = dict(
        figure="f",
        testbed="lu",
        size=5,
        num_tasks=15,
        heuristic="heft",
        model="one-port",
        makespan=10.0,
        speedup=2.0,
        num_comms=3,
        total_comm_time=4.0,
        utilization=0.5,
        lower_bound=8.0,
        runtime_s=0.1,
    )
    base.update(overrides)
    return base


class TestRoundTrip:
    def test_put_get_reload(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put("k1", cell_dict(), payload={"graph": "g"})
        cache.put("k2", cell_dict(speedup=3.0))
        assert cache.get("k1")["speedup"] == 2.0
        assert "k2" in cache

        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 2
        assert reloaded.get("k2")["speedup"] == 3.0
        assert reloaded.keys() == {"k1", "k2"}

    def test_records_are_appended_jsonl(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", cell_dict())
        cache.put("b", cell_dict())
        lines = cache.path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["key"] for line in lines} == {"a", "b"}

    def test_last_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", cell_dict(speedup=1.0))
        cache.put("k", cell_dict(speedup=9.0))
        assert cache.get("k")["speedup"] == 9.0
        assert ResultCache(tmp_path).get("k")["speedup"] == 9.0


class TestResilience:
    def test_torn_tail_is_skipped(self, tmp_path):
        """A crash mid-append leaves a truncated last line: loading must
        keep every complete record and drop the torn one."""
        cache = ResultCache(tmp_path)
        cache.put("good", cell_dict())
        with cache.path.open("a") as fh:
            fh.write('{"key": "torn", "cell": {"speedu')  # no newline, no close
        reloaded = ResultCache(tmp_path)
        assert reloaded.keys() == {"good"}
        # and the reloaded cache can still append past the torn tail
        reloaded.put("next", cell_dict())
        assert ResultCache(tmp_path).keys() == {"good", "next"}

    def test_non_record_lines_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        with cache.path.open("a") as fh:
            fh.write("\n")
            fh.write(json.dumps({"not": "a record"}) + "\n")
            fh.write(json.dumps({"key": 5, "cell": {}}) + "\n")  # bad key type
        cache.put("k", cell_dict())
        assert ResultCache(tmp_path).keys() == {"k"}

    def test_missing_key_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("absent") is None


class TestMultiWriter:
    def test_interleaved_appends_from_two_handles_both_survive(self, tmp_path):
        """Two writers sharing a directory (two campaigns, or spool
        shard merges) interleave whole O_APPEND records — a reload sees
        every key from both."""
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        for i in range(10):
            a.put(f"a{i}", cell_dict(speedup=float(i)))
            b.put(f"b{i}", cell_dict(speedup=float(-i)))
        a.close(), b.close()
        reloaded = ResultCache(tmp_path)
        assert reloaded.keys() == {f"a{i}" for i in range(10)} | {
            f"b{i}" for i in range(10)
        }
        lines = tmp_path.joinpath("cells.jsonl").read_text().splitlines()
        assert all(json.loads(line) for line in lines)  # no glued records

    def test_close_is_idempotent_and_reopens_lazily(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            cache.put("k1", cell_dict())
        cache.close()  # second close: no-op
        cache.put("k2", cell_dict())  # handle reopens lazily
        assert ResultCache(tmp_path).keys() == {"k1", "k2"}


class TestCompact:
    def test_compact_drops_superseded_and_torn_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", cell_dict(speedup=1.0))
        cache.put("k", cell_dict(speedup=9.0))
        cache.put("other", cell_dict())
        cache.close()
        with cache.path.open("a") as fh:
            fh.write('{"key": "torn", "cell": {"speedu')
        report = ResultCache(tmp_path).compact()
        assert report == {"kept": 2, "dropped": 2}
        lines = cache.path.read_text().splitlines()
        assert len(lines) == 2
        reloaded = ResultCache(tmp_path)
        assert reloaded.get("k")["speedup"] == 9.0
        assert reloaded.keys() == {"k", "other"}

    def test_compact_is_stable_when_already_compact(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", cell_dict())
        assert cache.compact() == {"kept": 1, "dropped": 0}
        before = cache.path.read_text()
        assert cache.compact() == {"kept": 1, "dropped": 0}
        assert cache.path.read_text() == before

    def test_compact_empty_cache(self, tmp_path):
        assert ResultCache(tmp_path).compact() == {"kept": 0, "dropped": 0}


class TestMerge:
    def test_merge_folds_sources_last_writer_wins(self, tmp_path):
        first, second = tmp_path / "one", tmp_path / "two"
        with ResultCache(first) as cache:
            cache.put("shared", cell_dict(speedup=1.0))
            cache.put("only-one", cell_dict())
        with ResultCache(second) as cache:
            cache.put("shared", cell_dict(speedup=2.0))
            cache.put("only-two", cell_dict())

        out = tmp_path / "merged"
        report = merge_caches(out, [first, second])
        assert report == {"cells": 3, "sources": 2, "added": 3}
        merged = ResultCache(out)
        assert merged.keys() == {"shared", "only-one", "only-two"}
        assert merged.get("shared")["speedup"] == 2.0  # later source wins

    def test_merge_into_existing_out_counts_only_new_keys(self, tmp_path):
        out, src = tmp_path / "out", tmp_path / "src"
        with ResultCache(out) as cache:
            cache.put("kept", cell_dict(speedup=5.0))
        with ResultCache(src) as cache:
            cache.put("kept", cell_dict(speedup=7.0))
            cache.put("new", cell_dict())
        report = merge_caches(out, [src])
        assert report == {"cells": 2, "sources": 1, "added": 1}
        merged = ResultCache(out)
        assert merged.get("kept")["speedup"] == 7.0  # sources beat out

    def test_merge_preserves_payloads_for_audit(self, tmp_path):
        src = tmp_path / "src"
        with ResultCache(src) as cache:
            cache.put("k", cell_dict(), payload={"graph": "g"})
        merge_caches(tmp_path / "out", [src])
        (line,) = (tmp_path / "out" / "cells.jsonl").read_text().splitlines()
        assert json.loads(line)["payload"] == {"graph": "g"}
