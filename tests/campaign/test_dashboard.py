"""Spool dashboard: model folding, rendering, and the watch loop.

The dashboard reads only the spool directory and its journal, so it
must render a finished campaign without the parent process — and a
half-finished one from whatever records exist.
"""

from repro.campaign import (
    CampaignSpec,
    HeuristicSpec,
    dashboard_model,
    render_dashboard,
    run_campaign,
)
from repro.campaign.dashboard import watch


def records(now: float = 200.0) -> list[dict]:
    return [
        {"ev": "campaign_start", "name": "demo", "wall": now - 10.0,
         "worker": "parent"},
        {"ev": "published", "key": "aaaa1111", "wall": now - 9.9,
         "worker": "parent"},
        {"ev": "published", "key": "bbbb2222", "wall": now - 9.9,
         "worker": "parent"},
        {"ev": "published", "key": "cccc3333", "wall": now - 9.9,
         "worker": "parent"},
        {"ev": "claimed", "key": "aaaa1111", "wall": now - 9.0, "worker": "w1"},
        {"ev": "completed", "key": "aaaa1111", "wall": now - 7.0,
         "worker": "w1"},
        {"ev": "claimed", "key": "bbbb2222", "wall": now - 6.5, "worker": "w1"},
        {"ev": "completed", "key": "bbbb2222", "wall": now - 5.0,
         "worker": "w1", "error": "boom"},
        {"ev": "claimed", "key": "cccc3333", "wall": now - 4.0, "worker": "w2"},
    ]


class TestModel:
    def test_folds_progress_rate_and_workers(self):
        model = dashboard_model(None, records(), now=200.0)
        assert model["campaign"] == "demo"
        assert model["state"] == "running" and not model["finished"]
        assert model["cells"] == {
            "queued": 0, "running": 1, "done": 2, "failed": 1,
        }
        # two completions 2s apart -> 0.5 cells/s; one cell left -> 2s
        assert model["rate_cells_s"] == 0.5
        assert model["eta_s"] == 2.0
        w1 = model["workers"]["w1"]
        assert w1["done"] == 2 and w1["errors"] == 1
        assert model["workers"]["w2"]["current"] == "cccc3333"
        (err,) = model["errors"]
        assert err["error"] == "boom" and err["worker"] == "w1"

    def test_live_spool_counts_override_the_journal(self):
        status = {"pending": 5, "leased": 2, "worker_health": {}}
        model = dashboard_model(status, records(), now=200.0)
        assert model["cells"]["queued"] == 5
        assert model["cells"]["running"] == 2

    def test_worker_health_overlays_heartbeats(self):
        status = {
            "pending": 0, "leased": 1,
            "worker_health": {
                "w2": {"done": 0, "heartbeat_age_s": 42.5, "stale": True},
            },
        }
        model = dashboard_model(status, records(), now=200.0)
        assert model["workers"]["w2"]["heartbeat_age_s"] == 42.5
        assert model["workers"]["w2"]["stale"] is True

    def test_finished_needs_campaign_end_and_a_drained_spool(self):
        ended = records() + [
            {"ev": "campaign_end", "name": "demo", "wall": 199.0,
             "worker": "parent"},
        ]
        still_leased = {"pending": 0, "leased": 1, "worker_health": {}}
        assert not dashboard_model(still_leased, ended, now=200.0)["finished"]
        drained = {"pending": 0, "leased": 0, "worker_health": {}}
        assert dashboard_model(drained, ended, now=200.0)["finished"]


class TestRender:
    def test_renders_every_section(self):
        status = {
            "pending": 0, "leased": 1,
            "worker_health": {
                "w2": {"done": 0, "heartbeat_age_s": 1.5, "stale": True},
            },
        }
        text = render_dashboard(dashboard_model(status, records(), now=200.0))
        assert "campaign demo — running" in text
        assert "2 done (1 failed), 1 running, 0 queued" in text
        assert "0.50 cells/s" in text
        assert "w1" in text and "w2" in text
        assert "[stale]" in text
        assert "boom" in text


class TestWatch:
    def test_one_frame_on_a_finished_campaign(self, tmp_path):
        """Acceptance: --watch renders from the journal of a finished
        campaign with no parent process alive."""
        spool_dir = tmp_path / "spool"
        run_campaign(
            CampaignSpec(name="watched", testbeds=["fork-join"], sizes=[5],
                         heuristics=[HeuristicSpec.of("heft")]),
            workers=1, executor="spool",
            executor_options={"dir": str(spool_dir), "poll_s": 0.02,
                              "worker_poll_s": 0.02},
        )
        frames: list[str] = []
        assert watch(spool_dir, interval_s=0.01, out=frames.append) == 0
        (frame,) = frames  # finished campaign: renders once and exits
        assert "campaign watched — finished" in frame
        assert "1 done" in frame

    def test_max_frames_bounds_an_unfinished_journal(self, tmp_path):
        from repro.campaign import Spool

        Spool(tmp_path / "s", create=True).publish({"key": "k"})
        frames: list[str] = []
        assert watch(tmp_path / "s", interval_s=0.01, out=frames.append,
                     max_frames=2) == 0
        assert len(frames) == 2
