"""Campaign determinism: worker count and cache temperature are invisible.

The ISSUE-level contract: the same ``CampaignSpec`` + seed yields
byte-identical cell keys and identical aggregated series whether run
with 1 worker, N workers, or from a warm cache.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    HeuristicSpec,
    ResultCache,
    campaign_status,
    mean_series,
    run_campaign,
)


def spec() -> CampaignSpec:
    return CampaignSpec(
        name="det",
        testbeds=["fork-join", "irregular"],
        sizes=[6, 10],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 8})],
        models=["one-port", "macro-dataflow"],
        seeds=[0, 1],
    )


def series_of(result):
    """Every aggregated series of every run, as comparable data."""
    out = {}
    for run in result.runs():
        for heuristic in run.heuristics():
            out[(run.figure, heuristic)] = run.series(heuristic)
    return out


def metrics_of(result):
    """Order-sensitive metric tuples for every outcome (no runtime_s)."""
    return [
        (o.cell.key, o.result.makespan, o.result.speedup, o.result.num_comms)
        for o in result.outcomes
    ]


class TestDeterminism:
    def test_keys_are_stable_across_expansions(self):
        assert [c.key for c in spec().expand()] == [c.key for c in spec().expand()]

    def test_one_worker_vs_pool_vs_warm_cache(self, tmp_path):
        serial = run_campaign(spec(), workers=1)

        cache = ResultCache(tmp_path)
        pooled = run_campaign(spec(), workers=4, cache=cache)
        assert pooled.cache_hits == 0

        warm = run_campaign(spec(), workers=4, cache=ResultCache(tmp_path))
        assert warm.cache_hits == len(warm.outcomes)
        assert warm.executed == 0

        assert metrics_of(serial) == metrics_of(pooled) == metrics_of(warm)
        assert series_of(serial) == series_of(pooled) == series_of(warm)

    def test_resume_after_partial_run(self, tmp_path):
        """A cache holding a strict subset of the grid (an interrupted
        campaign) is completed incrementally and agrees with a cold run."""
        cold = run_campaign(spec(), workers=1)

        # warm only half the grid: a narrower spec shares cell keys
        narrow = spec()
        narrow.sizes = [6]
        cache = ResultCache(tmp_path)
        run_campaign(narrow, workers=1, cache=cache)
        warmed = len(cache)
        assert 0 < warmed < len(cold.outcomes)

        resumed = run_campaign(spec(), workers=2, cache=ResultCache(tmp_path))
        assert resumed.cache_hits == warmed
        assert metrics_of(resumed) == metrics_of(cold)

    def test_refresh_recomputes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_campaign(spec(), workers=1, cache=cache)
        again = run_campaign(spec(), workers=1, cache=cache, refresh=True)
        assert again.cache_hits == 0
        assert metrics_of(first) == metrics_of(again)


class TestAggregation:
    def test_runs_group_by_testbed_and_model(self):
        result = run_campaign(spec(), workers=1)
        runs = result.runs()
        assert len(runs) == 4  # 2 testbeds x 2 models
        assert {r.figure for r in runs} == {
            "det/fork-join/one-port",
            "det/fork-join/macro-dataflow",
            "det/irregular/one-port",
            "det/irregular/macro-dataflow",
        }
        for run in runs:
            assert set(run.heuristics()) == {"heft", "ilha(b=8)"}

    def test_mean_series_collapses_seeds(self):
        result = run_campaign(spec(), workers=1)
        irregular = next(
            r for r in result.runs() if r.figure == "det/irregular/one-port"
        )
        # two seeds -> two cells per (size, heuristic); the mean series
        # has exactly one point per size
        assert len(irregular.series("heft")) == 4
        means = mean_series(irregular, "heft")
        assert [size for size, _ in means] == [6, 10]
        by_size = {}
        for (size, speedup) in irregular.series("heft"):
            by_size.setdefault(size, []).append(speedup)
        for size, mean in means:
            assert mean == pytest.approx(sum(by_size[size]) / len(by_size[size]))

    def test_status_tracks_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        before = campaign_status(spec(), cache)
        assert before["cached"] == 0
        assert before["missing"] == before["unique"]
        run_campaign(spec(), workers=1, cache=cache)
        after = campaign_status(spec(), cache)
        assert after["missing"] == 0
        assert after["cached"] == after["unique"] == before["unique"]

    def test_cache_hits_are_restamped_with_this_specs_labels(self, tmp_path):
        """Keys exclude presentation, so a hit produced under another
        campaign/label must be re-labelled for the current spec — else
        warm-cache aggregation files series under stale names."""
        producer = spec()
        producer.name = "producer"
        cache = ResultCache(tmp_path)
        run_campaign(producer, workers=1, cache=cache)

        consumer = spec()
        consumer.name = "consumer"
        consumer.heuristics = [
            HeuristicSpec.of("heft", label="HEFT-renamed"),
            HeuristicSpec.of("ilha", {"b": 8}, label="ILHA-renamed"),
        ]
        warm = run_campaign(consumer, workers=1, cache=ResultCache(tmp_path))
        assert warm.cache_hits == len(warm.outcomes)
        for run in warm.runs():
            assert set(run.heuristics()) == {"HEFT-renamed", "ILHA-renamed"}
            assert run.series("HEFT-renamed")
        assert all(o.result.figure == "consumer" for o in warm.outcomes)

    def test_platforms_group_by_content_not_label(self):
        """Two different machines under one label must not merge into a
        single mixed series."""
        from repro.campaign import PlatformSpec

        twin = CampaignSpec(
            name="twin",
            testbeds=["fork-join"],
            sizes=[6],
            heuristics=[HeuristicSpec.of("heft")],
            platforms=[
                PlatformSpec(label="custom", groups=((2, 1.0),)),
                PlatformSpec(label="custom", groups=((4, 1.0),)),
            ],
        )
        result = run_campaign(twin, workers=1)
        runs = result.runs()
        assert len(runs) == 2
        assert {r.figure for r in runs} == {"twin/custom", "twin/custom#2"}
        assert {r.platform.num_processors for r in runs} == {2, 4}
        for run in runs:
            assert len(run.cells) == 1

    def test_cached_cells_export_restamps_labels(self, tmp_path):
        """The export path must restamp presentation exactly like the
        runner: a shared cache filled by campaign A, exported under
        campaign B's spec, files every row under B's names."""
        from repro.campaign import cached_cells

        producer = spec()
        producer.name = "producer"
        cache = ResultCache(tmp_path)
        run_campaign(producer, workers=1, cache=cache)

        consumer = spec()
        consumer.name = "consumer"
        consumer.heuristics = [
            HeuristicSpec.of("heft", label="H2"),
            HeuristicSpec.of("ilha", {"b": 8}, label="I2"),
        ]
        rows = cached_cells(consumer, ResultCache(tmp_path))
        assert rows
        assert {r.figure for r in rows} == {"consumer"}
        assert {r.heuristic for r in rows} == {"H2", "I2"}

    def test_within_run_key_dedup(self):
        """Duplicate axis entries share one execution and one result."""
        dup = spec()
        dup.testbeds = ["fork-join", "fork-join"]
        dup.models = ["one-port"]
        result = run_campaign(dup, workers=1)
        assert len(result.outcomes) == 2 * len({o.cell.key for o in result.outcomes})
        assert result.executed == len({o.cell.key for o in result.outcomes})
