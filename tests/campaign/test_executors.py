"""Executor registry + invariance: the executor choice is invisible.

The tentpole contract: for a fixed spec, ``serial``, ``process(N)``,
and ``spool(N)`` — including two concurrent spool workers — produce
byte-identical aggregated series and identical cache key sets.  The
registry itself (names, construction, option validation) and the
runner's auto-selection/worker-count policy live here too.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    HeuristicSpec,
    ResultCache,
    available_executors,
    make_executor,
    register_executor,
    run_campaign,
)
from repro.campaign.executors import (
    ProcessExecutor,
    SerialExecutor,
    SpoolExecutor,
)
from repro.core.exceptions import ConfigurationError


def spec() -> CampaignSpec:
    return CampaignSpec(
        name="exec",
        testbeds=["fork-join", "irregular"],
        sizes=[6, 9],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 8})],
        models=["one-port"],
        seeds=[0],
    )


def series_of(result):
    out = {}
    for run in result.runs():
        for heuristic in run.heuristics():
            out[(run.figure, heuristic)] = run.series(heuristic)
    return out


def metrics_of(result):
    """Order-sensitive metric tuples per outcome (no runtime_s)."""
    return [
        (o.cell.key, o.result.makespan, o.result.speedup, o.result.num_comms)
        for o in result.outcomes
    ]


class TestRegistry:
    def test_builtin_executors_are_registered(self):
        assert {"serial", "process", "spool"} <= set(available_executors())

    def test_make_executor_builds_each_builtin(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("process", workers=3), ProcessExecutor)
        assert isinstance(make_executor("spool", workers=0), SpoolExecutor)

    def test_unknown_name_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            make_executor("carrier-pigeon")

    def test_bad_options_are_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="bad options"):
            make_executor("serial", altitude=9000)
        with pytest.raises(ConfigurationError, match=">= 0"):
            make_executor("spool", workers=-1)

    def test_register_executor_stamps_the_name(self):
        @register_executor("test-noop")
        class NoopExecutor:
            def __init__(self, workers: int = 1) -> None:
                self.workers = workers

            def execute(self, tasks, settle):
                pass

        try:
            assert NoopExecutor.name == "test-noop"
            assert isinstance(make_executor("test-noop"), NoopExecutor)
        finally:
            from repro.campaign.executors import _EXECUTORS

            _EXECUTORS.pop("test-noop", None)


class TestSelection:
    def test_auto_selection_matches_classic_behavior(self):
        one = spec()
        one.testbeds, one.sizes = ["fork-join"], [6]
        assert run_campaign(one, workers=1).executor == "serial"
        assert run_campaign(one, workers=2).executor == "process"

    def test_explicit_executor_is_recorded(self):
        one = spec()
        one.testbeds, one.sizes = ["fork-join"], [6]
        assert run_campaign(one, workers=2, executor="serial").executor == "serial"

    def test_zero_workers_only_valid_for_spool(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            run_campaign(spec(), workers=0)
        with pytest.raises(ValueError, match="workers must be >= 0"):
            run_campaign(spec(), workers=-1, executor="spool")


class TestInvariance:
    def test_serial_process_spool_agree(self, tmp_path):
        """The acceptance-criteria matrix: byte-identical aggregated
        series and identical cache key sets across all three executors,
        spool with two concurrent workers."""
        caches = {name: ResultCache(tmp_path / name) for name in
                  ("serial", "process", "spool")}
        serial = run_campaign(
            spec(), workers=1, executor="serial", cache=caches["serial"]
        )
        pooled = run_campaign(
            spec(), workers=2, executor="process", cache=caches["process"]
        )
        spooled = run_campaign(
            spec(), workers=2, executor="spool", cache=caches["spool"],
            executor_options={"lease_ttl": 10.0, "poll_s": 0.02,
                              "worker_poll_s": 0.02},
        )
        assert metrics_of(serial) == metrics_of(pooled) == metrics_of(spooled)
        assert series_of(serial) == series_of(pooled) == series_of(spooled)
        keys = {name: c.keys() for name, c in caches.items()}
        assert keys["serial"] == keys["process"] == keys["spool"]
        assert len(keys["serial"]) == len(serial.outcomes)

    def test_spool_warm_cache_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_campaign(
            spec(), workers=1, executor="spool", cache=cache,
            executor_options={"poll_s": 0.02, "worker_poll_s": 0.02},
        )
        warm = run_campaign(
            spec(), workers=1, executor="spool", cache=ResultCache(tmp_path),
            executor_options={"poll_s": 0.02, "worker_poll_s": 0.02},
        )
        assert warm.executed == 0
        assert warm.cache_hits == len(warm.outcomes)
        assert metrics_of(cold) == metrics_of(warm)


class TestGraphMemo:
    def test_memo_is_lru_not_fifo(self, monkeypatch):
        """A graph that keeps getting hit must survive eviction even when
        it was inserted first — the FIFO regression reloaded the hottest
        graph of interleaved sweeps every cell."""
        from collections import OrderedDict

        from repro.campaign import runner

        monkeypatch.setattr(runner, "_GRAPH_MEMO", OrderedDict())
        monkeypatch.setattr(runner, "_GRAPH_MEMO_LIMIT", 2)

        def gspec(size):
            return {"testbed": "fork-join", "size": size,
                    "comm_ratio": 10.0, "params": {}}

        hot = runner._build_graph(gspec(5))       # insert first
        runner._build_graph(gspec(6))             # memo full: [5, 6]
        assert runner._build_graph(gspec(5)) is hot   # hit refreshes recency
        runner._build_graph(gspec(7))             # evicts 6, not 5
        assert runner._build_graph(gspec(5)) is hot
        assert len(runner._GRAPH_MEMO) == 2

    def test_eviction_keeps_the_memo_bounded(self, monkeypatch):
        from collections import OrderedDict

        from repro.campaign import runner

        monkeypatch.setattr(runner, "_GRAPH_MEMO", OrderedDict())
        monkeypatch.setattr(runner, "_GRAPH_MEMO_LIMIT", 3)
        for size in range(5, 13):
            runner._build_graph({"testbed": "fork-join", "size": size,
                                 "comm_ratio": 10.0, "params": {}})
        assert len(runner._GRAPH_MEMO) == 3


class TestProgressLines:
    def test_offline_cells_render_speedup(self):
        one = spec()
        one.testbeds, one.sizes = ["fork-join"], [6]
        one.heuristics = [HeuristicSpec.of("heft")]
        lines = []
        run_campaign(one, workers=1, progress=lines.append)
        assert len(lines) == 1
        assert "speedup=" in lines[0] and "msgs=" in lines[0]

    def test_online_cells_render_flow_metrics(self):
        """Dynamic-workload cells carry metrics in ``extra`` — the
        progress line must render those instead of crashing on the
        missing speedup/num_comms fields."""
        online = CampaignSpec(
            name="live",
            testbeds=["fork-join"],
            sizes=[5],
            heuristics=[HeuristicSpec.of("heft")],
            online=[{"policy": "reactive", "jobs": 3}],
            seeds=[0],
        )
        lines = []
        run_campaign(online, workers=1, progress=lines.append)
        assert lines
        for line in lines:
            assert "flow=" in line and "stretch=" in line and "events=" in line
            assert "speedup=?" not in line

    def test_cached_hits_render_without_runtime(self, tmp_path):
        one = spec()
        one.testbeds, one.sizes = ["fork-join"], [6]
        cache = ResultCache(tmp_path)
        run_campaign(one, workers=1, cache=cache)
        lines = []
        run_campaign(one, workers=1, cache=ResultCache(tmp_path),
                     progress=lines.append)
        assert lines and all("[cached]" in line for line in lines)
