"""Tests for the campaign ``improve`` axis (ils post-pass sweeps)."""

import pytest

from repro.campaign import CampaignSpec, HeuristicSpec, ResultCache, run_campaign
from repro.core.exceptions import ConfigurationError


def spec(**overrides) -> CampaignSpec:
    payload = dict(
        name="improve",
        testbeds=["irregular"],
        sizes=[30],
        seeds=[0],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 8})],
        improve=[None, {"budget": 200, "seed": 0}],
    )
    payload.update(overrides)
    return CampaignSpec(**payload)


class TestExpansion:
    def test_improve_crosses_heuristic_axis(self):
        expanded = spec().expanded_heuristics()
        assert [h.name for h in expanded] == ["heft", "ils", "ilha", "ils"]
        wrapped = expanded[1]
        assert dict(wrapped.kwargs)["base"] == "heft"
        assert dict(wrapped.kwargs)["budget"] == 200
        ilha_wrapped = dict(expanded[3].kwargs)
        assert ilha_wrapped["base"] == "ilha"
        assert ilha_wrapped["base_kwargs"] == {"b": 8}

    def test_labels_distinguish_budgets(self):
        expanded = spec(
            improve=[{"budget": 100}, {"budget": 500}]
        ).expanded_heuristics()
        labels = [h.display for h in expanded]
        assert len(set(labels)) == len(labels)
        assert any("budget=100" in label for label in labels)
        assert any("budget=500" in label for label in labels)

    def test_no_improve_axis_is_identity(self):
        plain = spec(improve=[])
        assert plain.expanded_heuristics() == plain.heuristics
        assert len(plain.expand()) == 2

    def test_cells_multiply_by_improve_entries(self):
        assert len(spec().expand()) == 4  # 2 heuristics x (None + budget200)

    def test_distinct_cache_keys_per_budget(self):
        cells = spec(
            heuristics=[HeuristicSpec.of("heft")],
            improve=[None, {"budget": 100}, {"budget": 500}],
        ).expand()
        assert len({c.key for c in cells}) == 3


class TestValidation:
    def test_unknown_improve_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="improve"):
            spec(improve=[{"bogus": 1}])

    def test_non_dict_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="improve"):
            spec(improve=[42])

    def test_wrapping_ils_again_rejected(self):
        with pytest.raises(ConfigurationError, match="ils"):
            spec(heuristics=[HeuristicSpec.of("ils", {"base": "heft"})])

    def test_bad_parameter_values_rejected_up_front(self):
        """Values the ils constructor would refuse must fail at spec
        construction, not mid-campaign inside a worker."""
        with pytest.raises(ConfigurationError, match="improve"):
            spec(improve=[{"budget": -5}])
        with pytest.raises(ConfigurationError, match="improve"):
            spec(improve=[{"sideways": 2.0}])

    def test_macro_dataflow_model_rejected_with_improve(self):
        """Every improved cell requires one-port; reject the grid before
        any unimproved cell executes and gets cached."""
        with pytest.raises(ConfigurationError, match="one-port"):
            spec(models=["one-port", "macro-dataflow"])

    def test_macro_dataflow_without_improve_still_fine(self):
        assert spec(models=["macro-dataflow"], improve=[]).expand()

    def test_none_only_improve_axis_is_inert(self):
        """improve=[None] generates no ils cells, so neither the model
        nor the wrap-ils guard may fire."""
        none_only = spec(models=["macro-dataflow"], improve=[None])
        assert none_only.expanded_heuristics() == none_only.heuristics
        assert spec(
            heuristics=[HeuristicSpec.of("ils", {"base": "heft"})],
            models=["one-port"],
            improve=[None],
        ).expand()

    def test_string_budget_from_json_rejected_cleanly(self):
        """A hand-written spec file with a quoted number must fail with
        the campaign's own message, not a raw TypeError."""
        with pytest.raises(ConfigurationError, match="bad improve entry"):
            spec(improve=[{"budget": "100"}])

    def test_explicit_ils_without_improve_allowed(self):
        plain = spec(
            heuristics=[HeuristicSpec.of("ils", {"base": "heft", "budget": 50})],
            improve=[],
        )
        assert len(plain.expand()) == 1


class TestRoundTrip:
    def test_json_round_trip_preserves_improve(self, tmp_path):
        original = spec()
        path = original.to_json(tmp_path / "spec.json")
        loaded = CampaignSpec.from_json(path)
        assert loaded.improve == original.improve
        assert [c.key for c in loaded.expand()] == [c.key for c in original.expand()]


class TestExecution:
    def test_improved_cells_run_and_dominate_base(self, tmp_path):
        """The wrapped cells execute through the cached worker path and
        never fall below their base heuristic's speedup."""
        result = run_campaign(
            spec(heuristics=[HeuristicSpec.of("heft")]),
            workers=1,
            cache=ResultCache(tmp_path),
        )
        assert len(result.outcomes) == 2
        by_label = {o.result.heuristic: o.result for o in result.outcomes}
        base = by_label["heft"]
        improved = next(v for k, v in by_label.items() if k.startswith("ils("))
        assert improved.makespan <= base.makespan + 1e-6

        warm = run_campaign(
            spec(heuristics=[HeuristicSpec.of("heft")]),
            workers=1,
            cache=ResultCache(tmp_path),
        )
        assert warm.cache_hits == len(warm.outcomes)
        assert [o.result.makespan for o in warm.outcomes] == [
            o.result.makespan for o in result.outcomes
        ]
