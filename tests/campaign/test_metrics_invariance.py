"""Merged campaign metrics are executor- and worker-count-invariant.

Each cell collects into its own scope and ships the payload back, so
the parent's merged counters must be identical for serial, process,
and spool execution at any worker count — only transport bookkeeping
(poll sweeps, lease recovery, snapshots, journal records) and
wall-clock-derived values (timers, occupancy) may differ.
"""

import pytest

from repro.campaign import CampaignSpec, HeuristicSpec, run_campaign
from repro.obs import collect

#: Counters that measure the transport, not the work: legitimately
#: executor- or timing-dependent.
TRANSPORT = {
    "campaign.spool_poll",
    "campaign.leases_expired",
    "campaign.retries",
    "campaign.snapshots",
}


def spec() -> CampaignSpec:
    return CampaignSpec(
        name="invariance",
        testbeds=["fork-join", "lu"],
        sizes=[5, 7],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 4})],
        models=["one-port"],
        seeds=[0],
    )


def work_counters(executor: str, workers: int, tmp_path) -> dict:
    options = None
    if executor == "spool":
        options = {
            "dir": str(tmp_path / f"spool-{workers}"),
            "poll_s": 0.02, "worker_poll_s": 0.02,
        }
    with collect() as stats:
        run_campaign(
            spec(), workers=workers, executor=executor,
            executor_options=options,
        )
    return {
        k: v for k, v in stats.counters.items()
        if k not in TRANSPORT and not k.startswith("journal.")
    }


@pytest.mark.parametrize(
    "executor,workers",
    [("process", 2), ("spool", 1), ("spool", 2)],
)
def test_merged_counters_match_serial(executor, workers, tmp_path):
    reference = work_counters("serial", 1, tmp_path)
    assert reference["campaign.cells"] == 8
    assert reference["builder.commits"] > 0
    assert work_counters(executor, workers, tmp_path) == reference
