"""Wall-clock behavior of the worker pool (hardware-gated).

Result-equality across worker counts is covered by
``test_determinism.py``; this module checks the *point* of the pool —
that fanning cells over processes beats serial execution — which only
holds when the host actually has spare cores, so the timing assertion
skips itself on small machines instead of flaking.
"""

import os
import time

import pytest

from repro.campaign import CampaignSpec, HeuristicSpec, run_campaign


def timed_grid() -> CampaignSpec:
    """A grid whose cells are expensive enough to amortize pool startup."""
    return CampaignSpec(
        name="wallclock",
        testbeds=["lu"],
        sizes=[36, 44],
        heuristics=[
            HeuristicSpec.of("heft"),
            HeuristicSpec.of("ilha", {"b": 4}),
            HeuristicSpec.of("cpop"),
            HeuristicSpec.of("bil"),
        ],
        models=["one-port"],
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel wall-clock win needs >= 4 cores (pool is pure overhead on small hosts)",
)
def test_four_workers_beat_one_on_multicore():
    spec = timed_grid()
    t0 = time.perf_counter()
    serial = run_campaign(spec, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_campaign(spec, workers=4)
    pooled_s = time.perf_counter() - t0

    assert [c.makespan for c in serial.cells] == [c.makespan for c in pooled.cells]
    assert pooled_s < serial_s, (
        f"4 workers took {pooled_s:.2f}s vs {serial_s:.2f}s serial"
    )


def test_pool_size_is_clamped_to_pending_cells():
    """workers > cells must not spawn idle processes or change results."""
    spec = timed_grid()
    spec.sizes = [10]
    spec.heuristics = spec.heuristics[:2]
    lean = run_campaign(spec, workers=16)
    assert len(lean.outcomes) == 2
    assert lean.executed == 2
