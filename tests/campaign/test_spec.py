"""CampaignSpec expansion, content-hash keys, and JSON round-trips."""

import pytest

from repro.campaign import CampaignSpec, HeuristicSpec, PlatformSpec
from repro.core.exceptions import ConfigurationError


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="t",
        testbeds=["fork-join"],
        sizes=[5, 8],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 8})],
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestExpansion:
    def test_grid_product(self):
        spec = small_spec(models=["one-port", "macro-dataflow"])
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 2  # sizes x models x heuristics

    def test_seeds_only_multiply_seeded_testbeds(self):
        spec = small_spec(testbeds=["fork-join", "irregular"], seeds=[0, 1, 2])
        cells = spec.expand()
        fj = [c for c in cells if c.testbed == "fork-join"]
        irr = [c for c in cells if c.testbed == "irregular"]
        assert len(fj) == 2 * 2  # deterministic testbed: seeds collapse
        assert all(c.seed is None for c in fj)
        assert len(irr) == 2 * 3 * 2
        assert {c.seed for c in irr} == {0, 1, 2}

    def test_deterministic_order_and_keys(self):
        a = [c.key for c in small_spec().expand()]
        b = [c.key for c in small_spec().expand()]
        assert a == b
        assert len(set(a)) == len(a)

    def test_unknown_testbed_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(testbeds=["nope"])

    def test_unknown_heuristic_rejected_at_spec_time(self):
        """Bad heuristic names must fail before any cell executes (a
        mid-campaign failure inside the worker pool is much worse)."""
        with pytest.raises(ConfigurationError, match="frobnicate"):
            small_spec(heuristics=[HeuristicSpec.of("frobnicate")])

    def test_seed_in_graph_params_rejected(self):
        """A graph_params seed would be silently clobbered by the seeds
        axis in expand(); refuse it with a pointer to the right knob."""
        with pytest.raises(ConfigurationError, match="seeds"):
            small_spec(
                testbeds=["layered"], graph_params={"layered": {"seed": 7}}
            )

    def test_unknown_model_rejected_at_spec_time(self):
        """Typo'd model names in a spec file must fail at load, not
        mid-campaign (CLI choices= only guard the grid-flag mode)."""
        with pytest.raises(ConfigurationError, match="one-prot"):
            small_spec(models=["one-prot"])

    def test_unknown_graph_param_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(graph_params={"fork-join": {"bogus": 1}})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(sizes=[])


class TestKeys:
    def test_key_is_sha256_hex(self):
        (cell, *_) = small_spec().expand()
        assert len(cell.key) == 64
        int(cell.key, 16)

    def test_key_ignores_presentation(self):
        """Campaign name, series label, and validate flag are not content."""
        base = small_spec().expand()
        renamed = small_spec(name="other", validate=False).expand()
        relabeled = small_spec(
            heuristics=[
                HeuristicSpec.of("heft", label="HEFT!"),
                HeuristicSpec.of("ilha", {"b": 8}, label="fancy"),
            ]
        ).expand()
        assert [c.key for c in base] == [c.key for c in renamed]
        assert [c.key for c in base] == [c.key for c in relabeled]

    def test_key_tracks_content(self):
        base = {c.key for c in small_spec().expand()}
        assert {
            c.key for c in small_spec(comm_ratio=5.0).expand()
        }.isdisjoint(base)
        assert {
            c.key
            for c in small_spec(
                heuristics=[HeuristicSpec.of("ilha", {"b": 4})]
            ).expand()
        }.isdisjoint(base)
        assert {
            c.key
            for c in small_spec(
                platforms=[PlatformSpec(label="homog", groups=((4, 1.0),))]
            ).expand()
        }.isdisjoint(base)

    def test_platform_key_is_content_not_label(self):
        """Same machine under different labels/group orders shares keys."""
        a = small_spec(
            platforms=[PlatformSpec(label="x", groups=((2, 3.0), (1, 5.0)))]
        ).expand()
        b = small_spec(
            platforms=[PlatformSpec(label="y", groups=((2, 3.0), (1, 5.0)))]
        ).expand()
        assert [c.key for c in a] == [c.key for c in b]


class TestRoundTrip:
    def test_json_round_trip_preserves_keys(self, tmp_path):
        spec = CampaignSpec(
            name="rt",
            testbeds=["lu", "irregular"],
            sizes=[6, 9],
            heuristics=[
                HeuristicSpec.of("heft"),
                HeuristicSpec.of("ilha", {"b": 4, "single_comm_scan": True}, "ilha*"),
            ],
            models=["one-port", "macro-dataflow"],
            platforms=[PlatformSpec(label="small", groups=((3, 2.0), (1, 4.0)))],
            seeds=[0, 7],
            comm_ratio=3.5,
            graph_params={"irregular": {"hub_prob": 0.2}},
        )
        path = spec.to_json(tmp_path / "spec.json")
        loaded = CampaignSpec.from_json(path)
        assert loaded == spec
        assert [c.key for c in loaded.expand()] == [c.key for c in spec.expand()]

    def test_shorthand_payloads(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "s",
                "testbeds": ["lu"],
                "sizes": [5],
                "heuristics": ["heft", {"name": "ilha", "kwargs": {"b": 4}}],
                "platforms": ["paper"],
            }
        )
        assert spec.heuristics[0].display == "heft"
        assert spec.platforms[0].label == "paper"
        assert spec.platforms[0].build().num_processors == 10

    def test_missing_field_reported(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({"name": "x", "sizes": [1]})
