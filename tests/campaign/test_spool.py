"""Spool work-queue: protocol units, worker loop, crash recovery.

The robustness half of the executor contract: a SIGKILLed worker never
loses or duplicates a cell (its lease expires, the parent re-queues,
a surviving worker finishes the campaign with byte-identical results),
exhausted retries fail the campaign explicitly instead of hanging, and
deterministic cell errors fail fast without retries.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    HeuristicSpec,
    ResultCache,
    Spool,
    make_executor,
    run_campaign,
    run_worker,
)
from repro.campaign.spool import HOLD_WORKER
from repro.core.exceptions import CampaignError, ConfigurationError
from repro.obs import collect


def spec() -> CampaignSpec:
    return CampaignSpec(
        name="spool",
        testbeds=["fork-join"],
        sizes=[5, 7, 9],
        heuristics=[HeuristicSpec.of("heft")],
        models=["one-port"],
        seeds=[0],
    )


def tasks_of(campaign: CampaignSpec) -> list[dict]:
    seen = {}
    for cell in campaign.expand():
        seen.setdefault(cell.key, cell.task_payload())
    return list(seen.values())


def metrics_of(result):
    return [
        (o.cell.key, o.result.makespan, o.result.speedup, o.result.num_comms)
        for o in result.outcomes
    ]


class TestProtocol:
    def test_not_a_spool_dir(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a spool directory"):
            Spool(tmp_path / "absent")

    def test_publish_is_idempotent(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        task = {"key": "k1", "payload": 1}
        assert spool.publish(task) is True
        assert spool.publish({"key": "k1", "payload": 2}) is False
        (_, attempt, stored), = spool.scan_tasks()
        assert stored["payload"] == 1 and attempt == 0

    def test_claim_is_exclusive(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        spool.publish({"key": "k"})
        assert spool.claim("k", "alice", ttl=5.0) is True
        assert spool.claim("k", "bob", ttl=5.0) is False
        spool.release("k")
        assert spool.claim("k", "bob", ttl=5.0) is True

    def test_renew_refreshes_only_the_owner(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        spool.claim("k", "alice", ttl=5.0)
        before = spool.lease_info("k")["renewed"]
        time.sleep(0.02)
        spool.renew("k", "bob", ttl=5.0)  # not the owner: no-op
        assert spool.lease_info("k")["renewed"] == before
        spool.renew("k", "alice", ttl=5.0)
        assert spool.lease_info("k")["renewed"] > before

    def test_lease_expiry_clock(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        spool.claim("k", "alice", ttl=1.0)
        info = spool.lease_info("k")
        assert not spool.lease_expired(info, default_ttl=1.0)
        assert spool.lease_expired(info, default_ttl=1.0,
                                   now=time.time() + 2.0)

    def test_hold_blocks_claims_until_released(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        spool.hold("k", time.time() + 60)
        assert spool.claim("k", "alice", ttl=5.0) is False
        assert spool.lease_info("k")["worker"] == HOLD_WORKER
        spool.release("k")
        assert spool.claim("k", "alice", ttl=5.0) is True

    def test_done_shards_and_cursor(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        cursor: dict[str, int] = {}
        spool.complete("w1", "a", 0, cell={"makespan": 1.0})
        spool.complete("w2", "b", 1, cell={"makespan": 2.0}, stats={"counters": {}})
        first = spool.read_done(cursor)
        assert {r["key"] for r in first} == {"a", "b"}
        assert spool.read_done(cursor) == []  # cursor consumed everything
        spool.complete("w1", "c", 0, error="boom")
        (rec,) = spool.read_done(cursor)
        assert rec["key"] == "c" and rec["error"] == "boom"

    def test_read_done_skips_torn_tail_until_finished(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        shard = spool.done_dir / "w.jsonl"
        good = json.dumps({"key": "a", "attempt": 0, "cell": {}}) + "\n"
        shard.write_text(good + '{"key": "torn", "ce')  # crash mid-append
        cursor: dict[str, int] = {}
        assert [r["key"] for r in spool.read_done(cursor)] == ["a"]
        assert spool.read_done(cursor) == []
        # the writer finishes the line: the record shows up exactly once
        with shard.open("a") as fh:
            fh.write('ll": {}}\n')
        assert [r["key"] for r in spool.read_done(cursor)] == ["torn"]

    def test_status_worker_health(self, tmp_path):
        """Satellite: per-worker lease age and heartbeat staleness in
        the status snapshot (what `campaign status --json` publishes)."""
        spool = Spool(tmp_path, create=True)
        spool.complete("alice", "d1", 0, cell={})
        spool.complete("alice", "d2", 0, cell={})
        spool.claim("k1", "alice", ttl=60.0)
        spool.claim("k2", "bob", ttl=60.0)
        # age bob's lease past its ttl without a renewal
        lease = spool.lease_info("k2")
        (spool.leases_dir / "k2.json").write_text(json.dumps({
            **lease, "acquired": lease["acquired"] - 120.0,
            "renewed": lease["renewed"] - 120.0, "ttl": 60.0,
        }))
        health = spool.status()["worker_health"]
        alice, bob = health["alice"], health["bob"]
        assert alice["done"] == 2 and alice["leases"] == 1
        assert alice["heartbeat_age_s"] < 60.0 and not alice["stale"]
        assert alice["oldest_lease_age_s"] is not None
        assert bob["done"] == 0 and bob["leases"] == 1
        assert bob["heartbeat_age_s"] >= 120.0 and bob["stale"]
        # lease entries expose the raw heartbeat age too
        assert spool.status()["leases"]["k2"]["heartbeat_age_s"] >= 120.0

    def test_status_snapshot(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        spool.publish({"key": "p"})
        spool.claim("l", "alice", ttl=60.0)
        spool.complete("alice", "d", 0, cell={})
        spool.complete("alice", "f", 0, error="boom")
        status = spool.status()
        assert status["pending"] == 1
        assert status["leased"] == 1 and not status["leases"]["l"]["expired"]
        assert status["done"] == 2 and status["failed"] == ["f"]
        assert status["workers"] == {"alice": 2}
        assert status["stop_requested"] is False
        spool.request_stop()
        assert spool.status()["stop_requested"] is True


class TestWorkerLoop:
    def test_once_drains_published_tasks(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        for task in tasks_of(spec()):
            spool.publish(task)
        report = run_worker(tmp_path, worker="w0", once=True, lease_ttl=10.0)
        assert report == {"worker": "w0", "executed": 3, "errors": 0}
        assert not spool.has_tasks() and not spool.leased_keys()
        records = spool.read_done({})
        assert len(records) == 3
        assert all(r["cell"]["makespan"] > 0 for r in records)

    def test_stop_sentinel_ends_an_idle_worker(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        spool.request_stop()
        report = run_worker(tmp_path, worker="w0", poll_s=0.01)
        assert report["executed"] == 0

    def test_idle_timeout_ends_a_worker_without_sentinel(self, tmp_path):
        Spool(tmp_path, create=True)
        t0 = time.time()
        run_worker(tmp_path, worker="w0", poll_s=0.01, idle_timeout_s=0.05)
        assert time.time() - t0 < 5.0

    def test_worker_records_cell_errors(self, tmp_path):
        spool = Spool(tmp_path, create=True)
        task = tasks_of(spec())[0]
        task["heuristic"] = {"name": "no-such-heuristic", "kwargs": {}}
        spool.publish(task)
        report = run_worker(tmp_path, worker="w0", once=True)
        assert report["errors"] == 1 and report["executed"] == 0
        (record,) = spool.read_done({})
        assert "no-such-heuristic" in record["error"]
        assert not spool.has_tasks()  # recorded failures are retired too


def _claim_and_hang(root: str, ready) -> None:
    """Victim worker: claim the first claimable task, signal, hang.

    Claims exactly like a real worker but never renews and never
    completes — the SIGKILL target for the crash-recovery tests.
    """
    spool = Spool(root, create=True)
    deadline = time.time() + 30.0
    while time.time() < deadline:
        for key, _, _ in spool.scan_tasks():
            if spool.claim(key, "victim", ttl=0.4):
                ready.set()
                time.sleep(600.0)
        time.sleep(0.01)


@pytest.fixture
def fork_ctx():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("SIGKILL recovery test needs the fork start method")
    return multiprocessing.get_context("fork")


class TestCrashRecovery:
    def test_sigkilled_worker_never_loses_or_duplicates_a_cell(
        self, tmp_path, fork_ctx
    ):
        """Satellite 3: SIGKILL a worker mid-cell; its lease expires, the
        parent re-queues exactly once, a surviving worker finishes, and
        the aggregate matches a serial run byte for byte — with exactly
        one cache row per cell."""
        serial = run_campaign(spec(), workers=1, executor="serial")

        root = tmp_path / "spool"
        spool = Spool(root, create=True)
        for task in tasks_of(spec()):
            spool.publish(task)

        ready = fork_ctx.Event()
        victim = fork_ctx.Process(
            target=_claim_and_hang, args=(str(root), ready), daemon=True
        )
        victim.start()
        assert ready.wait(timeout=20.0), "victim never claimed a task"
        (held,) = spool.leased_keys()
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        assert spool.lease_info(held)["worker"] == "victim"  # stale lease

        cache = ResultCache(tmp_path / "cache")
        with collect() as stats:
            recovered = run_campaign(
                spec(), workers=1, executor="spool", cache=cache,
                executor_options={
                    "dir": str(root), "lease_ttl": 0.4, "poll_s": 0.02,
                    "max_retries": 2, "retry_backoff_s": 0.05,
                    "worker_poll_s": 0.02,
                },
            )

        assert metrics_of(recovered) == metrics_of(serial)
        assert stats.counters["campaign.leases_expired"] >= 1
        assert stats.counters["campaign.retries"] >= 1
        # exactly one durable cache row per cell: nothing lost, nothing
        # duplicated by the retry
        rows = [json.loads(line) for line in
                cache.path.read_text().splitlines() if line.strip()]
        keys = [r["key"] for r in rows]
        assert sorted(keys) == sorted(set(keys))
        assert set(keys) == {o.cell.key for o in recovered.outcomes}

        # acceptance: the journal of the recovered run renders as a
        # schema-valid campaign trace — one track per worker (victim +
        # rescuer), the lost claim as a crashed span, and the lease
        # expiry / retry as parent-track instants
        from repro.obs import campaign_trace, read_journal, validate_trace

        journal = read_journal(root)
        events = [r["ev"] for r in journal]
        assert events.count("expired") >= 1 and events.count("retried") >= 1
        trace = campaign_trace(journal)
        assert validate_trace(trace)["events"] > 0
        meta = trace["metadata"]
        assert meta["view"] == "campaign"
        assert "victim" in meta["workers"] and len(meta["workers"]) >= 2
        tracks = {ev["args"]["name"] for ev in trace["traceEvents"]
                  if ev.get("name") == "thread_name"}
        assert {f"worker {w}" for w in meta["workers"]} <= tracks
        instants = {ev["name"] for ev in trace["traceEvents"]
                    if ev.get("ph") == "i"}
        assert {"lease expired", "retry"} <= instants
        lost = [ev for ev in trace["traceEvents"]
                if ev.get("ph") == "X" and ev.get("args", {}).get("crashed")]
        assert lost, "the victim's expired claim must render as a lost span"

    def test_exhausted_retries_fail_explicitly_not_hang(
        self, tmp_path, fork_ctx
    ):
        """max_retries exceeded must raise a CampaignError naming the
        cell, not spin forever waiting for a worker that will never
        come back."""
        one = spec()
        one.sizes = [5]
        root = tmp_path / "spool"
        spool = Spool(root, create=True)
        for task in tasks_of(one):
            spool.publish(task)

        ready = fork_ctx.Event()
        victim = fork_ctx.Process(
            target=_claim_and_hang, args=(str(root), ready), daemon=True
        )
        victim.start()
        assert ready.wait(timeout=20.0)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)

        with pytest.raises(CampaignError, match="exhausted 0 retries"):
            # workers=0: nobody can rescue the cell, so the first lease
            # expiry exhausts the zero-retry budget immediately
            run_campaign(
                one, workers=0, executor="spool",
                executor_options={
                    "dir": str(root), "lease_ttl": 0.3, "poll_s": 0.02,
                    "max_retries": 0,
                },
            )

    def test_dead_local_workers_without_leases_fail_fast(self, tmp_path):
        """If every local worker is gone, nothing is leased, and nothing
        is held for retry, polling forever would hang — the executor
        must raise instead."""
        executor = make_executor(
            "spool", workers=1, dir=str(tmp_path), poll_s=0.02,
            max_retries=0, lease_ttl=5.0,
        )
        executor._spawn = lambda ctx, root: _DeadProc()
        task = tasks_of(spec())[0]
        task["heuristic"] = {"name": "heft", "kwargs": {}}
        with pytest.raises(CampaignError, match="all local spool workers died"):
            executor.execute([task], lambda *a: None)


class _DeadProc:
    """A worker process that died instantly (spawn-failure stand-in)."""

    pid = -1

    def is_alive(self) -> bool:
        return False

    def join(self, timeout=None) -> None:
        pass


class TestErrorPropagation:
    def test_error_record_fails_the_campaign_fast(self, tmp_path):
        """Deterministic cell failures are never retried: the first
        error record raises with the worker's message."""
        task = tasks_of(spec())[0]
        task["heuristic"] = {"name": "no-such-heuristic", "kwargs": {}}
        executor = make_executor(
            "spool", workers=1, dir=str(tmp_path), poll_s=0.02,
            worker_poll_s=0.02,
        )
        with pytest.raises(CampaignError, match="no-such-heuristic"):
            executor.execute([task], lambda *a: None)

    def test_ephemeral_spool_dir_is_cleaned_up(self, tmp_path, monkeypatch):
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        run_campaign(
            CampaignSpec(name="tiny", testbeds=["fork-join"], sizes=[5],
                         heuristics=[HeuristicSpec.of("heft")]),
            workers=1, executor="spool",
            executor_options={"poll_s": 0.02, "worker_poll_s": 0.02},
        )
        assert not list(tmp_path.glob("repro-spool-*"))
