"""Unit tests for the Theorem 2 COMM-SCHED reduction."""

import pytest

from repro.complexity import two_partition
from repro.complexity.comm_sched import (
    build_instance,
    decide,
    decide_by_enumeration,
    schedule_from_partition,
    task,
)
from repro.core import ConfigurationError, validate_schedule


class TestConstruction:
    def test_shape(self):
        inst = build_instance([1, 3, 2, 2])
        n = 4
        assert inst.graph.num_tasks == 3 * n + 1
        assert inst.platform.num_processors == 2 * n + 1
        assert inst.deadline == 8.0  # 2S with S = 4

    def test_zero_weights(self):
        inst = build_instance([2, 2])
        assert all(inst.graph.weight(v) == 0.0 for v in inst.graph.tasks())

    def test_edge_volumes(self):
        inst = build_instance([1, 3, 2, 2])
        assert inst.graph.data(task(0), task(2)) == 3.0
        # pair edges carry S = 4
        assert inst.graph.data(task(9), task(5)) == 4.0

    def test_allocation(self):
        inst = build_instance([1, 1])
        assert inst.alloc[task(0)] == 0
        assert inst.alloc[task(1)] == 1
        assert inst.alloc[task(3)] == 1  # v_{n+i} with P_i
        assert inst.alloc[task(5)] == 3  # v_{2n+i} on P_{n+i}

    def test_odd_total_rejected(self):
        with pytest.raises(ConfigurationError):
            build_instance([1, 2])


class TestForwardDirection:
    @pytest.mark.parametrize(
        "a", [[1, 1], [3, 1, 1, 2, 2, 3], [2, 2, 2, 2], [5, 5, 4, 6]]
    )
    def test_schedule_meets_2s_deadline(self, a):
        side = two_partition(a)
        assert side is not None
        inst = build_instance(a)
        sched = schedule_from_partition(inst, side)
        validate_schedule(sched)  # one-port rules incl. port disjointness
        assert sched.makespan() <= inst.deadline + 1e-9

    def test_placements_follow_fixed_allocation(self):
        a = [2, 2, 2, 2]
        inst = build_instance(a)
        sched = schedule_from_partition(inst, two_partition(a))
        for t, proc in inst.alloc.items():
            assert sched.proc_of(t) == proc

    def test_p0_send_port_saturated(self):
        """P0's sends are back-to-back for the whole window [0, 2S]."""
        a = [3, 1, 1, 2, 2, 3]
        inst = build_instance(a)
        sched = schedule_from_partition(inst, two_partition(a))
        p0_sends = sorted(
            (e for e in sched.comm_events if e.src_proc == 0), key=lambda e: e.start
        )
        assert p0_sends[0].start == 0.0
        for a_ev, b_ev in zip(p0_sends, p0_sends[1:]):
            assert b_ev.start == pytest.approx(a_ev.finish)
        assert p0_sends[-1].finish == pytest.approx(inst.deadline)

    def test_no_message_straddles_s(self):
        a = [3, 1, 1, 2, 2, 3]
        inst = build_instance(a)
        s = inst.half_sum
        sched = schedule_from_partition(inst, two_partition(a))
        for e in sched.comm_events:
            if e.src_proc == 0:
                assert e.finish <= s + 1e-9 or e.start >= s - 1e-9

    def test_bad_side_rejected(self):
        inst = build_instance([1, 1])
        with pytest.raises(ConfigurationError):
            schedule_from_partition(inst, [7])


class TestDecision:
    @pytest.mark.parametrize(
        "a, expected",
        [
            ([1, 1], True),
            ([3, 1, 1, 2, 2, 3], True),
            ([3, 1, 1, 1], True),   # plain 2-PARTITION suffices here
            ([2, 4, 100, 2], False),
            ([5, 5, 4, 6], True),
        ],
    )
    def test_closed_form(self, a, expected):
        inst = build_instance(a)
        assert decide(inst) == expected

    def test_closed_form_matches_enumeration(self):
        """The subset-sum argument agrees with brute force over P0 send
        orders on exhaustive small instances."""
        from itertools import product

        for a in product([1, 2, 3], repeat=4):
            if sum(a) % 2 != 0:
                continue
            inst = build_instance(list(a))
            assert decide(inst) == decide_by_enumeration(inst), a

    def test_enumeration_guard(self):
        inst = build_instance([2] * 10)
        with pytest.raises(ConfigurationError):
            decide_by_enumeration(inst, max_n=8)
