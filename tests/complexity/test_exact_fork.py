"""Unit tests for the exact one-port fork scheduler."""

import itertools

import pytest

from repro.complexity import (
    brute_force_fork_makespan,
    build_fork_schedule,
    fork_makespan_for_subset,
    jackson_remote_makespan,
    optimal_fork_makespan,
)
from repro.core import ConfigurationError, validate_schedule


class TestJackson:
    def test_empty(self):
        assert jackson_remote_makespan([]) == 0.0

    def test_single_job(self):
        assert jackson_remote_makespan([(2.0, 3.0)]) == 5.0

    def test_longest_tail_first(self):
        # tails 5 and 1, sends 1 each: LTF gives max(1+5, 2+1) = 6
        assert jackson_remote_makespan([(1.0, 1.0), (1.0, 5.0)]) == 6.0

    @pytest.mark.parametrize("seed", range(6))
    def test_beats_every_permutation(self, seed):
        import random

        rng = random.Random(seed)
        jobs = [(rng.uniform(0.5, 4.0), rng.uniform(0.5, 4.0)) for _ in range(5)]
        from repro.complexity.exact_fork import remote_makespan_for_order

        best = min(
            remote_makespan_for_order(jobs, order)
            for order in itertools.permutations(range(5))
        )
        assert jackson_remote_makespan(jobs) == pytest.approx(best)


class TestSubsetMakespan:
    def test_all_local_is_sequential(self):
        ms = fork_makespan_for_subset(1.0, [2.0, 3.0], [9.0, 9.0], {0, 1})
        assert ms == 6.0  # 1 + 2 + 3, no messages

    def test_all_remote(self):
        ms = fork_makespan_for_subset(1.0, [1.0, 1.0], [1.0, 1.0], set())
        # parent 1, then sends at 1 and 2; children finish 3 and...
        # LTF order: max(1+1+1, 1+2+1) = 4
        assert ms == 4.0

    def test_cycle_time_and_link_scaling(self):
        base = fork_makespan_for_subset(1.0, [1.0], [1.0], set())
        scaled = fork_makespan_for_subset(1.0, [1.0], [1.0], set(), cycle_time=2.0, link=3.0)
        assert base == 3.0
        assert scaled == 2.0 + 3.0 + 2.0


class TestOptimal:
    def test_figure1_example(self):
        """Section 2.3: one-port optimum 5 for the 6-child unit fork."""
        ms, local = optimal_fork_makespan(1.0, [1.0] * 6, [1.0] * 6)
        assert ms == 5.0
        # with 4 local children: P0 busy 5; remote side 1 + 2 sends + exec
        assert len(local) in (3, 4)

    def test_matches_brute_force_on_random_instances(self):
        import random

        for seed in range(8):
            rng = random.Random(seed)
            n = rng.randint(1, 6)
            w = [rng.randint(1, 6) for _ in range(n)]
            d = [rng.randint(1, 6) for _ in range(n)]
            exact, _ = optimal_fork_makespan(2.0, w, d)
            brute = brute_force_fork_makespan(2.0, w, d)
            assert exact == pytest.approx(brute)

    def test_grouping_never_helps(self):
        """The lemma behind subset enumeration: splitting remote children
        across more processors never hurts.  Enumerate every grouped
        variant of tiny instances via explicit simulation."""
        import random

        def grouped_makespan(w0, w, d, groups, order):
            # groups: remote child -> processor label; order: send order
            t = float(w0)
            arrival = {}
            for i in order:
                t += d[i]
                arrival[i] = t
            finish = 0.0
            by_proc = {}
            for i in order:
                p = groups[i]
                start = max(arrival[i], by_proc.get(p, 0.0))
                by_proc[p] = start + w[i]
                finish = max(finish, by_proc[p])
            return finish

        for seed in range(5):
            rng = random.Random(100 + seed)
            n = 4
            w = [rng.randint(1, 5) for _ in range(n)]
            d = [rng.randint(1, 5) for _ in range(n)]
            exact, _ = optimal_fork_makespan(1.0, w, d)
            best_grouped = float("inf")
            for mask in range(1 << n):
                local = {i for i in range(n) if mask >> i & 1}
                remote = [i for i in range(n) if i not in local]
                local_ms = 1.0 + sum(w[i] for i in local)
                for labels in itertools.product(range(max(1, len(remote))), repeat=len(remote)):
                    groups = dict(zip(remote, labels))
                    for order in itertools.permutations(remote):
                        ms = max(local_ms, grouped_makespan(1.0, w, d, groups, order))
                        best_grouped = min(best_grouped, ms)
            assert exact == pytest.approx(best_grouped)

    def test_refuses_huge_enumeration(self):
        with pytest.raises(ConfigurationError):
            optimal_fork_makespan(0.0, [1.0] * 30, [1.0] * 30)
        with pytest.raises(ConfigurationError):
            brute_force_fork_makespan(0.0, [1.0] * 12, [1.0] * 12)

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            optimal_fork_makespan(0.0, [1.0], [1.0, 2.0])


class TestBuildSchedule:
    def test_schedule_matches_predicted_makespan(self):
        w = [3.0, 1.0, 2.0, 5.0]
        d = [2.0, 1.0, 2.0, 1.0]
        ms, local = optimal_fork_makespan(1.0, w, d)
        sched = build_fork_schedule(1.0, w, d, local)
        validate_schedule(sched)
        assert sched.makespan() == pytest.approx(ms)

    def test_explicit_send_order(self):
        sched = build_fork_schedule(1.0, [1.0, 1.0], [2.0, 3.0], set(), send_order=[1, 0])
        validate_schedule(sched)
        first, second = sorted(sched.comm_events, key=lambda e: e.start)
        assert first.dst_task == "v2"

    def test_bad_send_order_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fork_schedule(1.0, [1.0, 1.0], [1.0, 1.0], {0}, send_order=[0, 1])

    def test_local_children_sequential_on_p0(self):
        sched = build_fork_schedule(2.0, [1.0, 2.0, 3.0], [1.0] * 3, {0, 1, 2})
        validate_schedule(sched)
        assert sched.makespan() == 8.0
        assert sched.processors_used() == {0}
