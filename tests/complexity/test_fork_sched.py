"""Unit tests for the Theorem 1 FORK-SCHED reduction."""

import pytest

from repro.complexity import equal_cardinality_partition, optimal_fork_makespan
from repro.complexity.fork_sched import build_instance, decide, schedule_from_partition
from repro.core import ConfigurationError, validate_schedule


class TestConstruction:
    def test_weights_follow_theorem(self):
        inst = build_instance([2, 3, 5])
        m, mn = 5, 2
        assert inst.child_weights[:3] == (10 * (5 + 2 + 1), 10 * (5 + 3 + 1), 10 * (5 + 5 + 1))
        w_min = 10 * (m + mn) + 1
        assert inst.child_weights[3:] == (w_min, w_min, w_min)
        assert inst.child_data == inst.child_weights
        assert inst.parent_weight == 0.0

    def test_wmin_is_unique_minimum(self):
        inst = build_instance([1, 4, 2, 2])
        assert inst.w_min == min(inst.child_weights)
        assert inst.w_min == inst.child_weights[-1]
        # the paper: w_min <= w_i <= 2 w_min for the first n children
        for w in inst.child_weights[: inst.n]:
            assert inst.w_min <= w <= 2 * inst.w_min

    def test_deadline_formula(self):
        a = [1, 2, 3, 4]
        inst = build_instance(a)
        n, s = 4, 5
        m, mn = 4, 1
        expected = 5 * n * (m + 1) + 10 * s + 20 * (m + mn) + 2
        assert inst.deadline == pytest.approx(expected)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            build_instance([])
        with pytest.raises(ConfigurationError):
            build_instance([0, 1])


class TestForwardDirection:
    """Balanced partition -> schedule meeting the deadline exactly."""

    @pytest.mark.parametrize(
        "a",
        [[3, 1, 1, 2, 2, 3], [2, 2, 2, 2], [5, 3, 4, 4, 3, 5], [1, 1]],
    )
    def test_schedule_meets_deadline(self, a):
        side = equal_cardinality_partition(a)
        assert side is not None, "test instances must have balanced partitions"
        inst = build_instance(a)
        sched = schedule_from_partition(inst, side)
        validate_schedule(sched)
        assert sched.makespan() == pytest.approx(inst.deadline)

    def test_p0_load_equals_deadline(self):
        a = [3, 1, 1, 2, 2, 3]
        side = equal_cardinality_partition(a)
        inst = build_instance(a)
        sched = schedule_from_partition(inst, side)
        assert sched.proc_busy_time(0) == pytest.approx(inst.deadline)

    def test_last_message_reaches_minimal_child(self):
        a = [2, 2, 4, 4]
        side = equal_cardinality_partition(a)
        inst = build_instance(a)
        sched = schedule_from_partition(inst, side)
        last = max(sched.comm_events, key=lambda e: e.finish)
        # the third special child (index n+3 in paper numbering)
        assert last.dst_task == f"v{inst.num_children}"

    def test_bad_side_rejected(self):
        inst = build_instance([1, 1])
        with pytest.raises(ConfigurationError):
            schedule_from_partition(inst, [5])


class TestDecision:
    """The construction decides equal-cardinality 2-PARTITION (DESIGN.md
    documents why plain 2-PARTITION is not exactly what it decides)."""

    @pytest.mark.parametrize(
        "a, expected",
        [
            ([3, 1, 1, 2, 2, 3], True),
            ([2, 2, 2, 2], True),
            ([1, 1], True),
            ([1, 2], False),          # odd total
            ([3, 1, 1, 1], False),    # partition exists but unbalanced sizes
            ([6, 1, 1, 1, 1, 2], False),  # only the unbalanced {6} vs rest works
            ([4, 3, 1, 2, 2, 2], True),
        ],
    )
    def test_matches_equal_cardinality_partition(self, a, expected):
        assert (equal_cardinality_partition(a) is not None) == expected
        inst = build_instance(a)
        assert decide(inst) == expected

    def test_exhaustive_small_instances(self):
        """FORK-SCHED(reduction instance) <=> balanced partition, checked
        against the exact scheduler for every tiny instance."""
        from itertools import product

        for a in product([1, 2, 3], repeat=4):
            inst = build_instance(list(a))
            exact, _ = optimal_fork_makespan(
                inst.parent_weight, inst.child_weights, inst.child_data
            )
            has_partition = equal_cardinality_partition(list(a)) is not None
            assert (exact <= inst.deadline + 1e-9) == has_partition, a
