"""Unit tests for the 2-PARTITION solvers."""

import pytest

from repro.complexity import (
    equal_cardinality_partition,
    is_partition,
    subset_with_sum,
    two_partition,
)
from repro.core import ConfigurationError


class TestSubsetSum:
    def test_finds_subset(self):
        values = [3, 1, 4, 1, 5]
        side = subset_with_sum(values, 8)
        assert side is not None
        assert sum(values[i] for i in side) == 8

    def test_zero_target(self):
        assert subset_with_sum([1, 2], 0) == []

    def test_impossible(self):
        assert subset_with_sum([2, 4, 6], 5) is None
        assert subset_with_sum([1], -1) is None

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            subset_with_sum([0, 1], 1)
        with pytest.raises(ConfigurationError):
            subset_with_sum([1.5], 1)


class TestTwoPartition:
    def test_simple_yes(self):
        values = [1, 5, 11, 5]
        side = two_partition(values)
        assert side is not None
        assert is_partition(values, side)

    def test_odd_total_no(self):
        assert two_partition([1, 2]) is None

    def test_even_total_but_impossible(self):
        assert two_partition([2, 4, 100]) is None

    def test_singletons(self):
        assert two_partition([7]) is None
        side = two_partition([7, 7])
        assert side is not None and len(side) == 1

    @pytest.mark.parametrize(
        "values",
        [[3, 1, 1, 2, 2, 3], [10, 10], [1, 1, 1, 1], [8, 7, 6, 5, 4, 2]],
    )
    def test_yes_instances(self, values):
        side = two_partition(values)
        assert side is not None
        assert is_partition(values, side)


class TestEqualCardinality:
    def test_needs_even_count(self):
        assert equal_cardinality_partition([2, 1, 1]) is None

    def test_finds_balanced_sides(self):
        values = [3, 1, 1, 2, 2, 3]
        side = equal_cardinality_partition(values)
        assert side is not None
        assert len(side) == 3
        assert sum(values[i] for i in side) == 6

    def test_plain_yes_but_cardinality_no(self):
        """{3} vs {1,1,1} is a 2-PARTITION but sides have sizes 1 and 3."""
        values = [3, 1, 1, 1]
        assert two_partition(values) is not None
        assert equal_cardinality_partition(values) is None

    def test_exhaustive_cross_check(self):
        """DP agrees with brute force on every small instance."""
        from itertools import combinations, product

        for values in product([1, 2, 3], repeat=4):
            values = list(values)
            half = sum(values) / 2
            expected = any(
                sum(values[i] for i in combo) == half
                for combo in combinations(range(4), 2)
            )
            assert (equal_cardinality_partition(values) is not None) == expected


class TestIsPartition:
    def test_validates_indices(self):
        assert not is_partition([2, 2], [0, 0])  # duplicate index
        assert not is_partition([2, 2], [5])  # out of range
        assert is_partition([2, 2], [0])
        assert not is_partition([2, 4], [0])
