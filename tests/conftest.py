"""Shared fixtures: the paper platform and a menagerie of small graphs."""

from __future__ import annotations

import pytest

from repro import Platform
from repro.graphs import (
    figure1_example,
    fork_join_graph,
    laplace_graph,
    layered_random,
    lu_graph,
    stencil_graph,
    toy_graph,
)


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked 'slow' (long search property tests)",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running property tests, excluded from the tier-1 run "
        "(enable with --run-slow)",
    )


def pytest_collection_modifyitems(config, items) -> None:
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test; run with --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def paper_platform() -> Platform:
    """Section 5.2: 5x t=6, 3x t=10, 2x t=15 on a unit network."""
    return Platform.from_groups([(5, 6), (3, 10), (2, 15)])


@pytest.fixture
def two_identical() -> Platform:
    """The toy example's platform: two unit processors, unit links."""
    return Platform.homogeneous(2, cycle_time=1.0, link=1.0)


@pytest.fixture
def five_identical() -> Platform:
    """The Figure 1 example's platform."""
    return Platform.homogeneous(5, cycle_time=1.0, link=1.0)


@pytest.fixture
def small_graphs() -> list:
    """A small cross-section of every generator family."""
    return [
        figure1_example(),
        toy_graph(),
        fork_join_graph(8),
        lu_graph(5),
        laplace_graph(4),
        stencil_graph(4),
        layered_random(4, 4, density=0.6, seed=7),
    ]
