"""Unit tests for the makespan lower bounds."""

import pytest

from repro.core import (
    Platform,
    TaskGraph,
    critical_path_lower_bound,
    makespan_lower_bound,
    work_lower_bound,
)
from repro.graphs import fork_join_graph, lu_graph


class TestWorkBound:
    def test_single_processor(self):
        g = lu_graph(5)
        plat = Platform([2.0])
        assert work_lower_bound(g, plat) == pytest.approx(g.total_weight() * 2.0)

    def test_scales_with_processors(self):
        g = lu_graph(5)
        one = work_lower_bound(g, Platform([1.0]))
        four = work_lower_bound(g, Platform.homogeneous(4))
        assert four == pytest.approx(one / 4)

    def test_paper_speedup_ceiling(self):
        """speedup = seq / work_bound = min(t) * sum(1/t) = 7.6."""
        g = fork_join_graph(100)
        plat = Platform.from_groups([(5, 6), (3, 10), (2, 15)])
        ceiling = plat.sequential_time(g.total_weight()) / work_lower_bound(g, plat)
        assert ceiling == pytest.approx(7.6)


class TestCriticalPathBound:
    def test_chain_is_fully_sequential(self):
        g = TaskGraph()
        g.add_task("a", 2.0)
        g.add_task("b", 3.0)
        g.add_dependency("a", "b", 100.0)  # comm is free in the bound
        plat = Platform([2.0, 4.0])
        assert critical_path_lower_bound(g, plat) == pytest.approx(10.0)

    def test_independent_tasks(self):
        g = TaskGraph()
        g.add_task("a", 2.0)
        g.add_task("b", 5.0)
        plat = Platform.homogeneous(2)
        assert critical_path_lower_bound(g, plat) == pytest.approx(5.0)


class TestCombinedBound:
    def test_is_max_of_both(self):
        g = lu_graph(6)
        plat = Platform.from_groups([(5, 6), (3, 10), (2, 15)])
        assert makespan_lower_bound(g, plat) == pytest.approx(
            max(work_lower_bound(g, plat), critical_path_lower_bound(g, plat))
        )

    def test_no_heuristic_beats_it(self, paper_platform):
        from repro import HEFT, ILHA

        for graph in (lu_graph(8), fork_join_graph(20)):
            lb = makespan_lower_bound(graph, paper_platform)
            for scheduler in (HEFT(), ILHA(b=4)):
                sched = scheduler.run(graph, paper_platform, "one-port")
                assert sched.makespan() >= lb - 1e-9
