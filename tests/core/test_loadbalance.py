"""Unit tests for the Section 4.2 load-balancing primitives."""

import itertools

import pytest

from repro.core import (
    ConfigurationError,
    distribution_makespan,
    optimal_distribution,
    perfect_balance_count,
    share_limits,
    weight_shares,
)
from repro.core.loadbalance import (
    ChunkLoadTracker,
    b_candidates,
    is_count_distribution_optimal,
)

PAPER = [6.0] * 5 + [10.0] * 3 + [15.0] * 2


class TestWeightShares:
    def test_sum_to_one(self):
        assert sum(weight_shares(PAPER)) == pytest.approx(1.0)

    def test_proportional_to_speed(self):
        shares = weight_shares([1.0, 2.0])
        assert shares[0] == pytest.approx(2 * shares[1])

    def test_identical_processors(self):
        assert weight_shares([3.0, 3.0, 3.0]) == pytest.approx([1 / 3] * 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            weight_shares([])
        with pytest.raises(ConfigurationError):
            weight_shares([1.0, 0.0])

    def test_share_limits(self):
        limits = share_limits(100.0, [1.0, 1.0])
        assert limits == pytest.approx([50.0, 50.0])
        with pytest.raises(ConfigurationError):
            share_limits(-1.0, [1.0])


class TestOptimalDistribution:
    def test_paper_example_38_tasks(self):
        """Section 5.2: 5 tasks to each t=6, 3 to each t=10, 2 to each t=15."""
        counts = optimal_distribution(38, PAPER)
        assert counts == [5] * 5 + [3] * 3 + [2] * 2
        assert distribution_makespan(counts, PAPER) == pytest.approx(30.0)

    def test_all_tasks_distributed(self):
        for n in (0, 1, 7, 13, 38, 100):
            assert sum(optimal_distribution(n, PAPER)) == n

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_distribution(-1, PAPER)

    def test_deterministic_tie_break(self):
        assert optimal_distribution(1, [2.0, 2.0]) == [1, 0]

    def test_exchange_optimality_checker(self):
        assert is_count_distribution_optimal([5] * 5 + [3] * 3 + [2] * 2, PAPER)
        assert not is_count_distribution_optimal([38] + [0] * 9, PAPER)

    @pytest.mark.parametrize("cycle_times", [[1.0, 2.0], [2.0, 3.0, 5.0], [6.0, 10.0, 15.0]])
    @pytest.mark.parametrize("n", [1, 3, 5, 8, 11])
    def test_matches_brute_force(self, cycle_times, n):
        """The greedy algorithm reaches the true min-max over all integer
        distributions (exhaustive check on small instances)."""
        greedy = distribution_makespan(optimal_distribution(n, cycle_times), cycle_times)
        best = min(
            distribution_makespan(counts, cycle_times)
            for counts in itertools.product(range(n + 1), repeat=len(cycle_times))
            if sum(counts) == n
        )
        assert greedy == pytest.approx(best)


class TestPerfectBalance:
    def test_paper_value(self):
        assert perfect_balance_count(PAPER) == 38

    def test_identical(self):
        assert perfect_balance_count([4.0, 4.0]) == 2

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            perfect_balance_count([1.5, 2.0])

    def test_shares_integral_at_balance(self):
        m = perfect_balance_count(PAPER)
        for share in weight_shares(PAPER):
            assert (share * m) == pytest.approx(round(share * m))

    def test_b_candidates_cover_range(self):
        cands = b_candidates(PAPER)
        assert min(cands) == 10  # p
        assert max(cands) == 38  # M
        assert cands == sorted(set(cands))


class TestChunkLoadTracker:
    def test_fits_until_limit(self):
        tracker = ChunkLoadTracker(10.0, [1.0, 1.0])
        assert tracker.fits(0, 5.0)
        tracker.add(0, 5.0)
        assert not tracker.fits(0, 0.1)
        assert tracker.fits(1, 5.0)

    def test_remaining(self):
        tracker = ChunkLoadTracker(12.0, [1.0, 2.0])
        assert tracker.remaining(0) == pytest.approx(8.0)
        assert tracker.remaining(1) == pytest.approx(4.0)
        tracker.add(1, 1.0)
        assert tracker.remaining(1) == pytest.approx(3.0)

    def test_slack_tolerance(self):
        tracker = ChunkLoadTracker(3.0, [1.0, 1.0, 1.0])
        assert tracker.fits(0, 1.0)  # exactly the limit, within slack
