"""Unit tests for the Platform substrate, including the paper's constants."""

import math

import numpy as np
import pytest

from repro.core import Platform, PlatformError


class TestConstruction:
    def test_scalar_link(self):
        p = Platform([1.0, 2.0], link=3.0)
        assert p.link(0, 1) == 3.0
        assert p.link(1, 0) == 3.0
        assert p.link(0, 0) == 0.0

    def test_matrix_link(self):
        mat = [[0.0, 1.0], [2.0, 0.0]]
        p = Platform([1.0, 1.0], mat)
        assert p.link(0, 1) == 1.0
        assert p.link(1, 0) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(PlatformError):
            Platform([])

    def test_nonpositive_cycle_time_rejected(self):
        with pytest.raises(PlatformError):
            Platform([0.0])
        with pytest.raises(PlatformError):
            Platform([-1.0])

    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(PlatformError):
            Platform([1.0, 1.0], [[0.0]])

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(PlatformError):
            Platform([1.0, 1.0], [[1.0, 1.0], [1.0, 0.0]])

    def test_negative_link_rejected(self):
        with pytest.raises(PlatformError):
            Platform([1.0, 1.0], [[0.0, -1.0], [1.0, 0.0]])

    def test_homogeneous_constructor(self):
        p = Platform.homogeneous(4, cycle_time=2.0, link=3.0)
        assert p.num_processors == 4
        assert all(t == 2.0 for t in p.cycle_times)

    def test_from_groups(self):
        p = Platform.from_groups([(2, 6), (1, 10)])
        assert p.cycle_times == (6.0, 6.0, 10.0)

    def test_link_matrix_read_only(self):
        p = Platform.homogeneous(2)
        with pytest.raises(ValueError):
            p.link_matrix[0, 1] = 5.0


class TestCosts:
    def test_exec_time(self):
        p = Platform([6.0, 10.0])
        assert p.exec_time(3.0, 0) == 18.0
        assert p.exec_time(3.0, 1) == 30.0

    def test_comm_time_zero_local(self):
        p = Platform.homogeneous(2, link=5.0)
        assert p.comm_time(100.0, 0, 0) == 0.0
        assert p.comm_time(100.0, 0, 1) == 500.0

    def test_comm_time_missing_link_raises(self):
        mat = [[0.0, math.inf], [1.0, 0.0]]
        p = Platform([1.0, 1.0], mat)
        with pytest.raises(PlatformError):
            p.comm_time(1.0, 0, 1)
        assert not p.has_link(0, 1)
        assert p.has_link(1, 0)
        assert not p.is_fully_connected()

    def test_proc_index_validation(self):
        p = Platform.homogeneous(2)
        with pytest.raises(PlatformError):
            p.cycle_time(2)
        with pytest.raises(PlatformError):
            p.link(0, 5)


class TestPaperConstants:
    """Section 5.2's derived values for the 6/10/15 platform."""

    @pytest.fixture
    def paper(self):
        return Platform.from_groups([(5, 6), (3, 10), (2, 15)])

    def test_aggregate_speed(self, paper):
        assert paper.aggregate_speed() == pytest.approx(5 / 6 + 3 / 10 + 2 / 15)

    def test_speedup_bound_is_7_6(self, paper):
        assert paper.speedup_bound() == pytest.approx(7.6)

    def test_perfect_balance_is_38(self, paper):
        assert paper.perfect_balance_count() == 38

    def test_sequential_reference_example(self, paper):
        # "to compute these 38 tasks in a sequential way ... 38 * 6 = 228"
        assert paper.sequential_time(38.0) == pytest.approx(228.0)

    def test_fastest_processor(self, paper):
        assert paper.fastest_processor() == 0
        assert paper.min_cycle_time() == 6.0

    def test_average_cycle_time_is_harmonic_mean(self, paper):
        assert paper.average_cycle_time() == pytest.approx(10 / paper.aggregate_speed())

    def test_average_link_homogeneous(self, paper):
        assert paper.average_link_time() == pytest.approx(1.0)


class TestAverages:
    def test_single_processor_average_link_zero(self):
        assert Platform([1.0]).average_link_time() == 0.0

    def test_average_link_ignores_missing(self):
        mat = np.array([[0.0, 2.0, math.inf], [2.0, 0.0, 4.0], [math.inf, 4.0, 0.0]])
        p = Platform([1.0, 1.0, 1.0], mat)
        assert p.average_link_time() == pytest.approx(3.0)

    def test_perfect_balance_non_integer_raises(self):
        with pytest.raises(PlatformError):
            Platform([1.5, 2.0]).perfect_balance_count()

    def test_identical_processors_balance(self):
        assert Platform.homogeneous(4).perfect_balance_count() == 4


class TestFrozenPlatform:
    """Regression: compiled statics and flat kernels cache
    platform-derived tables (``link_rows``, flat ``comm_time`` inputs),
    so mutating a platform after building a schedule used to poison the
    caches silently.  Platforms are now frozen at construction."""

    def test_attribute_assignment_raises(self):
        p = Platform.homogeneous(3)
        with pytest.raises(PlatformError, match="frozen"):
            p._cycle_times = (2.0, 2.0, 2.0)
        with pytest.raises(PlatformError, match="frozen"):
            p.new_field = 1

    def test_link_rows_are_immutable_tuples(self):
        p = Platform.homogeneous(3, link=2.0)
        rows = p.link_rows()
        with pytest.raises(TypeError):
            rows[0][1] = 99.0
        with pytest.raises(TypeError):
            rows[0] = (0.0, 0.0, 0.0)

    def test_link_matrix_is_read_only(self):
        p = Platform.homogeneous(3, link=2.0)
        with pytest.raises(ValueError):
            p.link_matrix[0, 1] = 99.0

    def test_mutation_after_schedule_cannot_poison_caches(self):
        from repro.graphs import lu_graph
        from repro.heuristics import get_scheduler

        p = Platform.from_groups([(2, 1.0), (1, 2.0)], link=1.5)
        graph = lu_graph(5)
        before = get_scheduler("heft").run(graph, p, "one-port").makespan()
        for attempt in (
            lambda: setattr(p, "_link_rows", ((0.0,),)),
            lambda: setattr(p, "_cycle_times", (9.0, 9.0, 9.0)),
        ):
            with pytest.raises(PlatformError):
                attempt()
        with pytest.raises(ValueError):
            p.link_matrix[0, 1] = 0.0
        # the cached statics still serve the original tables
        after = get_scheduler("heft").run(graph, p, "one-port").makespan()
        assert after == before
