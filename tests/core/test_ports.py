"""Unit tests for PortSet / PortSetOverlay: the one-port primitives."""

import pytest

from repro.core import PortSet, PortSetOverlay, TimelineError


class TestPortSet:
    def test_needs_processor(self):
        with pytest.raises(TimelineError):
            PortSet(0)

    def test_local_transfer_free(self):
        ports = PortSet(3)
        assert ports.earliest_transfer(1, 1, 5.0, 100.0) == 5.0
        ports.reserve_transfer(1, 1, 5.0, 100.0)  # no-op
        assert ports.send[1].is_empty()
        assert ports.recv[1].is_empty()

    def test_transfer_books_both_ports(self):
        ports = PortSet(3)
        start = ports.earliest_transfer(0, 1, 2.0, 3.0)
        assert start == 2.0
        ports.reserve_transfer(0, 1, start, 3.0, tag="m")
        assert ports.send[0].intervals() == [(2.0, 5.0, "m")]
        assert ports.recv[1].intervals() == [(2.0, 5.0, "m")]
        assert ports.send[1].is_empty()
        assert ports.recv[0].is_empty()

    def test_sender_serialization(self):
        """One sender to two receivers: messages serialize on the send port."""
        ports = PortSet(3)
        ports.reserve_transfer(0, 1, 0.0, 4.0)
        start = ports.earliest_transfer(0, 2, 0.0, 4.0)
        assert start == 4.0

    def test_receiver_serialization(self):
        """Two senders to one receiver: messages serialize on the recv port."""
        ports = PortSet(3)
        ports.reserve_transfer(0, 2, 0.0, 4.0)
        start = ports.earliest_transfer(1, 2, 0.0, 4.0)
        assert start == 4.0

    def test_disjoint_pairs_parallel(self):
        """The paper: 'several communications can occur in parallel,
        provided that they involve disjoint pairs'."""
        ports = PortSet(4)
        ports.reserve_transfer(0, 1, 0.0, 4.0)
        assert ports.earliest_transfer(2, 3, 0.0, 4.0) == 0.0

    def test_bidirectional_overlap(self):
        """Send and receive ports are independent: P0 can send to P1 while
        receiving from P1 (bi-directional one-port)."""
        ports = PortSet(2)
        ports.reserve_transfer(0, 1, 0.0, 4.0)
        assert ports.earliest_transfer(1, 0, 0.0, 4.0) == 0.0

    def test_copy_independent(self):
        ports = PortSet(2)
        ports.reserve_transfer(0, 1, 0.0, 1.0)
        dup = ports.copy()
        dup.reserve_transfer(0, 1, 1.0, 1.0)
        assert len(ports.send[0]) == 1
        assert len(dup.send[0]) == 2


class TestPortSetOverlay:
    def test_tentative_does_not_touch_base(self):
        base = PortSet(2)
        ov = PortSetOverlay(base)
        start = ov.earliest_transfer(0, 1, 0.0, 2.0)
        ov.reserve_transfer(0, 1, start, 2.0)
        assert base.send[0].is_empty()
        # but the overlay sees its own reservation
        assert ov.earliest_transfer(0, 1, 0.0, 2.0) == 2.0

    def test_commit_replays(self):
        base = PortSet(2)
        ov = PortSetOverlay(base)
        ov.reserve_transfer(0, 1, 0.0, 2.0, tag="m")
        ov.commit()
        assert base.send[0].intervals() == [(0.0, 2.0, "m")]
        assert base.recv[1].intervals() == [(0.0, 2.0, "m")]

    def test_sees_base_reservations(self):
        base = PortSet(2)
        base.reserve_transfer(0, 1, 0.0, 3.0)
        ov = PortSetOverlay(base)
        assert ov.earliest_transfer(0, 1, 0.0, 1.0) == 3.0

    def test_two_overlays_are_independent_trials(self):
        base = PortSet(2)
        ov1 = PortSetOverlay(base)
        ov2 = PortSetOverlay(base)
        ov1.reserve_transfer(0, 1, 0.0, 5.0)
        # ov2 does not see ov1's tentative interval
        assert ov2.earliest_transfer(0, 1, 0.0, 1.0) == 0.0
