"""Unit tests for bottom/top levels and critical paths."""

import pytest

from repro.core import (
    Platform,
    TaskGraph,
    bottom_levels,
    critical_path,
    critical_path_length,
    priority_order,
    top_levels,
)
from repro.core.ranking import averaged_comms, averaged_weights


@pytest.fixture
def chain():
    g = TaskGraph()
    for v, w in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
        g.add_task(v, w)
    g.add_dependency("a", "b", 10.0)
    g.add_dependency("b", "c", 20.0)
    return g


@pytest.fixture
def unit_platform():
    return Platform.homogeneous(2, cycle_time=1.0, link=1.0)


class TestAverages:
    def test_homogeneous_weights_unchanged(self, chain, unit_platform):
        aw = averaged_weights(chain, unit_platform)
        assert aw == {"a": 1.0, "b": 2.0, "c": 3.0}

    def test_heterogeneous_harmonic_mean(self, chain):
        plat = Platform([6.0, 10.0, 10.0, 15.0])
        # harmonic mean = 4 / (1/6 + 1/10 + 1/10 + 1/15)
        hm = 4 / (1 / 6 + 1 / 10 + 1 / 10 + 1 / 15)
        aw = averaged_weights(chain, plat)
        assert aw["b"] == pytest.approx(2.0 * hm)

    def test_comm_average(self, chain, unit_platform):
        ac = averaged_comms(chain, unit_platform)
        assert ac[("a", "b")] == 10.0


class TestBottomLevels:
    def test_chain_values(self, chain, unit_platform):
        bl = bottom_levels(chain, unit_platform)
        assert bl["c"] == 3.0
        assert bl["b"] == 2.0 + 20.0 + 3.0
        assert bl["a"] == 1.0 + 10.0 + bl["b"]

    def test_communications_always_counted(self, unit_platform):
        """The paper: 'it is (conservatively) estimated that
        communications cannot be avoided'."""
        g = TaskGraph()
        g.add_task("p", 1.0)
        g.add_task("q", 1.0)
        g.add_dependency("p", "q", 100.0)
        bl = bottom_levels(g, unit_platform)
        assert bl["p"] == 102.0

    def test_fork_takes_max_child(self, unit_platform):
        g = TaskGraph()
        g.add_task("root", 1.0)
        g.add_task("small", 1.0)
        g.add_task("big", 50.0)
        g.add_dependency("root", "small", 1.0)
        g.add_dependency("root", "big", 1.0)
        bl = bottom_levels(g, unit_platform)
        assert bl["root"] == 1.0 + 1.0 + 50.0

    def test_parent_at_least_child_plus_weight(self, unit_platform):
        from repro.graphs import layered_random

        g = layered_random(5, 4, density=0.5, seed=3)
        bl = bottom_levels(g, unit_platform)
        aw = averaged_weights(g, unit_platform)
        for u, v in g.edges():
            assert bl[u] >= aw[u] + bl[v] - 1e-9


class TestTopLevels:
    def test_entry_zero(self, chain, unit_platform):
        tl = top_levels(chain, unit_platform)
        assert tl["a"] == 0.0
        assert tl["b"] == 11.0
        assert tl["c"] == 11.0 + 2.0 + 20.0

    def test_tl_plus_bl_constant_on_chain(self, chain, unit_platform):
        tl = top_levels(chain, unit_platform)
        bl = bottom_levels(chain, unit_platform)
        lengths = {v: tl[v] + bl[v] for v in chain.tasks()}
        assert len(set(lengths.values())) == 1  # a chain is one path


class TestCriticalPath:
    def test_length_matches_entry_bl(self, chain, unit_platform):
        assert critical_path_length(chain, unit_platform) == pytest.approx(36.0)

    def test_path_is_graph_path(self, unit_platform):
        from repro.graphs import lu_graph

        g = lu_graph(5)
        path = critical_path(g, unit_platform)
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)
        assert g.in_degree(path[0]) == 0
        assert g.out_degree(path[-1]) == 0

    def test_diamond_every_node_on_cp(self, unit_platform):
        """LAPLACE property: in the diamond DAG every node is on a
        critical path (all source->sink paths have equal length)."""
        from repro.graphs import laplace_graph

        g = laplace_graph(4, comm_ratio=1.0)
        tl = top_levels(g, unit_platform)
        bl = bottom_levels(g, unit_platform)
        lengths = {round(tl[v] + bl[v], 9) for v in g.tasks()}
        assert len(lengths) == 1

    def test_empty_graph(self, unit_platform):
        g = TaskGraph()
        assert critical_path(g, unit_platform) == []
        assert critical_path_length(g, unit_platform) == 0.0


class TestPriorityOrder:
    def test_descending_bottom_level(self, chain, unit_platform):
        assert priority_order(chain, unit_platform) == ["a", "b", "c"]

    def test_custom_key(self, chain, unit_platform):
        order = priority_order(chain, unit_platform, key=lambda v: (v,))
        assert order == sorted(chain.tasks())

    def test_ties_broken_by_insertion_index(self, unit_platform):
        g = TaskGraph()
        for v in ("z", "m", "a"):
            g.add_task(v, 1.0)
        assert priority_order(g, unit_platform) == ["z", "m", "a"]
