"""Unit tests for Schedule: recording, lookups, metrics, Gantt output."""

import pytest

from repro.core import Platform, Schedule, SchedulingError, TaskGraph


@pytest.fixture
def chain_graph():
    g = TaskGraph(name="chain")
    g.add_task("a", 2.0)
    g.add_task("b", 3.0)
    g.add_dependency("a", "b", 4.0)
    return g


@pytest.fixture
def platform():
    return Platform.homogeneous(2, cycle_time=1.0, link=1.0)


def build(chain_graph, platform):
    s = Schedule(chain_graph, platform, model="one-port", heuristic="manual")
    s.place("a", 0, 0.0, 2.0)
    s.record_comm("a", "b", 0, 1, 2.0, 4.0, 4.0)
    s.place("b", 1, 6.0, 9.0)
    return s


class TestRecording:
    def test_place_twice_rejected(self, chain_graph, platform):
        s = Schedule(chain_graph, platform)
        s.place("a", 0, 0.0, 2.0)
        with pytest.raises(SchedulingError):
            s.place("a", 1, 0.0, 2.0)

    def test_place_unknown_task_rejected(self, chain_graph, platform):
        s = Schedule(chain_graph, platform)
        with pytest.raises(SchedulingError):
            s.place("ghost", 0, 0.0, 1.0)

    def test_completeness(self, chain_graph, platform):
        s = Schedule(chain_graph, platform)
        assert not s.is_complete()
        s.place("a", 0, 0.0, 2.0)
        s.place("b", 1, 6.0, 9.0)
        assert s.is_complete()


class TestLookups:
    def test_sigma_and_alloc(self, chain_graph, platform):
        s = build(chain_graph, platform)
        assert s.proc_of("b") == 1
        assert s.start_of("b") == 6.0
        assert s.finish_of("a") == 2.0

    def test_tasks_on_sorted(self, chain_graph, platform):
        s = build(chain_graph, platform)
        assert [p.task for p in s.tasks_on(0)] == ["a"]
        assert [p.task for p in s.tasks_on(1)] == ["b"]

    def test_comms_between(self, chain_graph, platform):
        s = build(chain_graph, platform)
        events = s.comms_between(("a", "b"))
        assert len(events) == 1
        assert events[0].duration == 4.0
        assert s.comms_between(("b", "a")) == []


class TestMetrics:
    def test_makespan(self, chain_graph, platform):
        assert build(chain_graph, platform).makespan() == 9.0

    def test_empty_makespan(self, chain_graph, platform):
        assert Schedule(chain_graph, platform).makespan() == 0.0

    def test_sequential_and_speedup(self, chain_graph, platform):
        s = build(chain_graph, platform)
        assert s.sequential_time() == 5.0  # (2 + 3) * 1
        assert s.speedup() == pytest.approx(5.0 / 9.0)

    def test_comm_metrics(self, chain_graph, platform):
        s = build(chain_graph, platform)
        assert s.num_comms() == 1
        assert s.total_comm_time() == 4.0

    def test_busy_and_utilization(self, chain_graph, platform):
        s = build(chain_graph, platform)
        assert s.proc_busy_time(0) == 2.0
        assert s.proc_busy_time(1) == 3.0
        assert s.utilization() == pytest.approx(5.0 / (2 * 9.0))

    def test_processors_used(self, chain_graph, platform):
        assert build(chain_graph, platform).processors_used() == {0, 1}

    def test_summary_keys(self, chain_graph, platform):
        summary = build(chain_graph, platform).summary()
        for key in ("heuristic", "model", "makespan", "speedup", "num_comms"):
            assert key in summary


class TestGantt:
    def test_contains_processor_rows(self, chain_graph, platform):
        text = build(chain_graph, platform).gantt(width=40)
        assert "P0" in text and "P1" in text
        assert "0->1" in text
        assert "makespan = 9" in text

    def test_empty_schedule(self, chain_graph, platform):
        assert Schedule(chain_graph, platform).gantt() == "(empty schedule)"
