"""Unit tests for schedule JSON round-trips."""

import pytest

from repro import HEFT, ILHA, validate_schedule
from repro.core import SchedulingError
from repro.core.serialization import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.graphs import lu_graph, toy_graph


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, paper_platform):
        g = lu_graph(6)
        original = HEFT().run(g, paper_platform, "one-port")
        back = schedule_from_dict(schedule_to_dict(original), g, paper_platform)
        validate_schedule(back)
        assert back.makespan() == original.makespan()
        assert back.heuristic == original.heuristic
        assert back.model == original.model
        for t in g.tasks():
            assert back.proc_of(t) == original.proc_of(t)
            assert back.start_of(t) == original.start_of(t)
        assert back.num_comms() == original.num_comms()

    def test_tuple_task_ids_resolved(self, paper_platform):
        """LU's tuple ids survive the repr round-trip."""
        g = lu_graph(4)
        original = ILHA(b=4).run(g, paper_platform, "one-port")
        back = schedule_from_dict(schedule_to_dict(original), g, paper_platform)
        assert back.proc_of(("p", 1)) == original.proc_of(("p", 1))

    def test_file_roundtrip(self, paper_platform, tmp_path):
        g = toy_graph()
        original = HEFT().run(g, paper_platform, "one-port")
        path = save_schedule(original, tmp_path / "sched.json")
        back = load_schedule(path, g, paper_platform)
        validate_schedule(back)
        assert back.makespan() == original.makespan()

    def test_hops_preserved(self, paper_platform):
        g = toy_graph()
        original = HEFT().run(g, paper_platform, "one-port")
        payload = schedule_to_dict(original)
        back = schedule_from_dict(payload, g, paper_platform)
        originals = sorted((e.start, e.finish) for e in original.comm_events)
        rebuilt = sorted((e.start, e.finish) for e in back.comm_events)
        assert originals == rebuilt


class TestErrors:
    def test_unknown_task_rejected(self, paper_platform):
        g = toy_graph()
        payload = schedule_to_dict(HEFT().run(g, paper_platform, "one-port"))
        payload["placements"][0]["task"] = "'ghost'"
        with pytest.raises(SchedulingError, match="unknown task"):
            schedule_from_dict(payload, g, paper_platform)

    def test_wrong_graph_rejected(self, paper_platform):
        g = toy_graph()
        payload = schedule_to_dict(HEFT().run(g, paper_platform, "one-port"))
        other = lu_graph(4)
        with pytest.raises(SchedulingError, match="unknown task"):
            schedule_from_dict(payload, other, paper_platform)
