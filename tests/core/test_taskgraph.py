"""Unit tests for the TaskGraph substrate."""

import networkx as nx
import pytest

from repro.core import GraphError, TaskGraph


def diamond() -> TaskGraph:
    g = TaskGraph(name="diamond")
    for v, w in [("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)]:
        g.add_task(v, w)
    g.add_dependency("a", "b", 10.0)
    g.add_dependency("a", "c", 20.0)
    g.add_dependency("b", "d", 30.0)
    g.add_dependency("c", "d", 40.0)
    return g


class TestConstruction:
    def test_add_task_and_weight(self):
        g = TaskGraph()
        g.add_task("x", 2.5)
        assert g.weight("x") == 2.5
        assert "x" in g
        assert len(g) == 1

    def test_default_weight_is_one(self):
        g = TaskGraph()
        g.add_task("x")
        assert g.weight("x") == 1.0

    def test_zero_weight_allowed(self):
        g = TaskGraph()
        g.add_task("x", 0.0)
        assert g.weight("x") == 0.0

    def test_negative_weight_rejected(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task("x", -1.0)

    def test_nan_and_inf_weight_rejected(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task("x", float("nan"))
        with pytest.raises(GraphError):
            g.add_task("y", float("inf"))

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("x")
        with pytest.raises(GraphError):
            g.add_task("x")

    def test_edge_requires_known_tasks(self):
        g = TaskGraph()
        g.add_task("x")
        with pytest.raises(GraphError):
            g.add_dependency("x", "ghost", 1.0)

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task("x")
        with pytest.raises(GraphError):
            g.add_dependency("x", "x")

    def test_duplicate_edge_rejected(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.add_dependency("a", "b", 5.0)

    def test_negative_data_rejected(self):
        g = TaskGraph()
        g.add_task("x")
        g.add_task("y")
        with pytest.raises(GraphError):
            g.add_dependency("x", "y", -1.0)

    def test_from_specs_roundtrip(self):
        g = TaskGraph.from_specs(
            [("a", 1.0), ("b", 2.0)], [("a", "b", 3.0)], name="spec"
        )
        assert g.name == "spec"
        assert g.data("a", "b") == 3.0

    def test_from_networkx(self):
        nxg = nx.DiGraph()
        nxg.add_node("u", weight=5.0)
        nxg.add_node("v", weight=6.0)
        nxg.add_edge("u", "v", data=7.0)
        g = TaskGraph(nxg)
        assert g.weight("u") == 5.0
        assert g.data("u", "v") == 7.0


class TestQueries:
    def test_counts(self):
        g = diamond()
        assert g.num_tasks == 4
        assert g.num_edges == 4

    def test_entry_exit(self):
        g = diamond()
        assert g.entry_tasks() == ["a"]
        assert g.exit_tasks() == ["d"]

    def test_neighbours(self):
        g = diamond()
        assert sorted(g.successors("a")) == ["b", "c"]
        assert sorted(g.predecessors("d")) == ["b", "c"]
        assert g.in_degree("d") == 2
        assert g.out_degree("a") == 2

    def test_totals(self):
        g = diamond()
        assert g.total_weight() == 10.0
        assert g.total_data() == 100.0

    def test_unknown_task_raises(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.weight("ghost")
        with pytest.raises(GraphError):
            g.predecessors("ghost")
        with pytest.raises(GraphError):
            g.data("a", "d")

    def test_set_weight_and_data(self):
        g = diamond()
        g.set_weight("a", 9.0)
        g.set_data("a", "b", 99.0)
        assert g.weight("a") == 9.0
        assert g.data("a", "b") == 99.0

    def test_scale_data(self):
        g = diamond()
        g.scale_data(0.5)
        assert g.data("a", "b") == 5.0
        assert g.total_data() == 50.0


class TestTraversal:
    def test_topological_order_is_topological(self):
        g = diamond()
        order = g.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_topological_order_deterministic(self):
        assert diamond().topological_order() == diamond().topological_order()

    def test_cycle_detected(self):
        g = TaskGraph()
        g.add_task("x")
        g.add_task("y")
        g.add_dependency("x", "y")
        g.add_dependency("y", "x")
        with pytest.raises(GraphError):
            g.validate()
        with pytest.raises(GraphError):
            g.topological_order()

    def test_levels(self):
        g = diamond()
        assert g.levels() == [["a"], ["b", "c"], ["d"]]

    def test_levels_empty_graph(self):
        assert TaskGraph().levels() == []

    def test_as_maps_consistent(self):
        g = diamond()
        maps = g.as_maps()
        assert maps.weight == {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        assert maps.preds["d"] == ("b", "c")
        assert maps.succs["a"] == ("b", "c")
        assert maps.data[("c", "d")] == 40.0

    def test_as_maps_invalidated_on_mutation(self):
        g = diamond()
        _ = g.as_maps()
        g.add_task("e", 5.0)
        assert "e" in g.as_maps().weight


class TestSerialization:
    def test_to_dict(self):
        d = diamond().to_dict()
        assert d["name"] == "diamond"
        assert len(d["tasks"]) == 4
        assert len(d["edges"]) == 4

    def test_to_networkx_is_copy(self):
        g = diamond()
        nxg = g.to_networkx()
        nxg.add_node("zzz")
        assert "zzz" not in g
