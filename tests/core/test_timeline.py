"""Unit tests for Timeline, TimelineOverlay, and joint-fit search."""

import pytest

from repro.core import Timeline, TimelineError, TimelineOverlay, earliest_joint_fit


class TestTimelineBasics:
    def test_empty(self):
        t = Timeline()
        assert t.is_empty()
        assert t.last_end() == 0.0
        assert t.next_fit(5.0, 3.0) == 5.0

    def test_reserve_and_query(self):
        t = Timeline()
        t.reserve(1.0, 3.0, "a")
        assert len(t) == 1
        assert t.intervals() == [(1.0, 3.0, "a")]
        assert t.busy_time() == 2.0
        assert t.last_end() == 3.0

    def test_overlap_rejected(self):
        t = Timeline()
        t.reserve(1.0, 3.0)
        with pytest.raises(TimelineError):
            t.reserve(2.0, 4.0)
        with pytest.raises(TimelineError):
            t.reserve(0.0, 1.5)
        with pytest.raises(TimelineError):
            t.reserve(1.5, 2.5)

    def test_touching_endpoints_allowed(self):
        t = Timeline()
        t.reserve(1.0, 3.0)
        t.reserve(3.0, 5.0)
        t.reserve(0.0, 1.0)
        assert len(t) == 3

    def test_invalid_reservation(self):
        t = Timeline()
        with pytest.raises(TimelineError):
            t.reserve(3.0, 1.0)
        with pytest.raises(TimelineError):
            t.reserve(float("nan"), 1.0)

    def test_is_free(self):
        t = Timeline()
        t.reserve(2.0, 4.0)
        assert t.is_free(0.0, 2.0)
        assert t.is_free(4.0, 10.0)
        assert not t.is_free(1.0, 3.0)
        assert not t.is_free(3.0, 3.5)


class TestNextFit:
    def test_before_first_interval(self):
        t = Timeline()
        t.reserve(5.0, 8.0)
        assert t.next_fit(0.0, 3.0) == 0.0

    def test_gap_too_small_skips(self):
        t = Timeline()
        t.reserve(2.0, 4.0)
        t.reserve(5.0, 8.0)
        assert t.next_fit(0.0, 2.0) == 0.0  # fits before
        assert t.next_fit(2.0, 2.0) == 8.0  # [4,5) gap is too small
        assert t.next_fit(2.0, 1.0) == 4.0  # fits exactly in the gap

    def test_ready_inside_interval(self):
        t = Timeline()
        t.reserve(2.0, 6.0)
        assert t.next_fit(3.0, 1.0) == 6.0

    def test_ready_at_interval_end(self):
        t = Timeline()
        t.reserve(2.0, 6.0)
        assert t.next_fit(6.0, 1.0) == 6.0

    def test_zero_duration_conflicts_with_nothing(self):
        t = Timeline()
        t.reserve(2.0, 6.0)
        # zero-length windows are instants: they fit anywhere, even at an
        # instant covered by a reservation (zero-weight tasks occupy no
        # time-step), and reserving them stores nothing
        assert t.next_fit(0.0, 0.0) == 0.0
        assert t.next_fit(3.0, 0.0) == 3.0
        t.reserve(3.0, 3.0, "instant")
        assert len(t) == 1

    def test_negative_duration_rejected(self):
        with pytest.raises(TimelineError):
            Timeline().next_fit(0.0, -1.0)

    def test_next_after_last(self):
        t = Timeline()
        t.reserve(2.0, 6.0)
        assert t.next_after_last(0.0) == 6.0
        assert t.next_after_last(9.0) == 9.0

    def test_chain_of_many_intervals(self):
        t = Timeline()
        for i in range(10):
            t.reserve(2 * i, 2 * i + 1, i)
        # every odd-unit gap fits a 1-duration window
        assert t.next_fit(0.5, 1.0) == 1.0
        assert t.next_fit(0.0, 1.5) == 19.0  # nothing fits until after the last

    def test_gaps(self):
        t = Timeline()
        t.reserve(2.0, 4.0)
        t.reserve(6.0, 7.0)
        assert t.gaps(10.0) == [(0.0, 2.0), (4.0, 6.0), (7.0, 10.0)]
        assert t.gaps(3.0) == [(0.0, 2.0)]

    def test_copy_is_independent(self):
        t = Timeline()
        t.reserve(0.0, 1.0)
        c = t.copy()
        c.reserve(1.0, 2.0)
        assert len(t) == 1
        assert len(c) == 2


class TestOverlay:
    def test_sees_base_and_local(self):
        base = Timeline()
        base.reserve(0.0, 2.0)
        ov = TimelineOverlay(base)
        assert ov.next_fit(0.0, 1.0) == 2.0
        ov.reserve(2.0, 3.0, "tentative")
        assert ov.next_fit(0.0, 1.0) == 3.0
        # base untouched
        assert base.next_fit(0.0, 1.0) == 2.0

    def test_overlap_with_base_rejected(self):
        base = Timeline()
        base.reserve(0.0, 2.0)
        ov = TimelineOverlay(base)
        with pytest.raises(TimelineError):
            ov.reserve(1.0, 3.0)

    def test_overlap_with_local_rejected(self):
        ov = TimelineOverlay(Timeline())
        ov.reserve(0.0, 2.0)
        with pytest.raises(TimelineError):
            ov.reserve(1.0, 3.0)

    def test_commit_replays_to_base(self):
        base = Timeline()
        ov = TimelineOverlay(base)
        ov.reserve(0.0, 1.0, "x")
        ov.reserve(2.0, 3.0, "y")
        ov.commit()
        assert base.intervals() == [(0.0, 1.0, "x"), (2.0, 3.0, "y")]
        assert ov.added() == []

    def test_discard_leaves_base_untouched(self):
        base = Timeline()
        ov = TimelineOverlay(base)
        ov.reserve(0.0, 1.0)
        del ov
        assert base.is_empty()

    def test_interleaved_base_local_search(self):
        base = Timeline()
        base.reserve(0.0, 1.0)
        base.reserve(4.0, 5.0)
        ov = TimelineOverlay(base)
        ov.reserve(1.0, 2.0)
        # free: [2,4) and [5,inf)
        assert ov.next_fit(0.0, 2.0) == 2.0
        assert ov.next_fit(0.0, 3.0) == 5.0

    def test_next_after_last_mixed(self):
        base = Timeline()
        base.reserve(0.0, 4.0)
        ov = TimelineOverlay(base)
        assert ov.next_after_last(0.0) == 4.0
        ov.reserve(5.0, 6.0)
        assert ov.next_after_last(0.0) == 6.0
        assert ov.last_end() == 6.0


class TestJointFit:
    def test_requires_views(self):
        with pytest.raises(TimelineError):
            earliest_joint_fit([], 0.0, 1.0)

    def test_two_disjoint_busy_sets(self):
        a = Timeline()
        a.reserve(0.0, 2.0)
        b = Timeline()
        b.reserve(3.0, 5.0)
        # joint free window of 1: [2,3) works
        assert earliest_joint_fit([a, b], 0.0, 1.0) == 2.0
        # window of 2 must go after both
        assert earliest_joint_fit([a, b], 0.0, 2.0) == 5.0

    def test_alternating_conflicts_converge(self):
        a = Timeline()
        b = Timeline()
        for i in range(5):
            a.reserve(2 * i, 2 * i + 1)
            b.reserve(2 * i + 1, 2 * i + 2)
        # a free on odd units, b free on even units: first joint window is 10
        assert earliest_joint_fit([a, b], 0.0, 1.0) == 10.0

    def test_three_views(self):
        a, b, c = Timeline(), Timeline(), Timeline()
        a.reserve(0.0, 1.0)
        b.reserve(1.0, 2.0)
        c.reserve(2.0, 3.0)
        assert earliest_joint_fit([a, b, c], 0.0, 1.0) == 3.0

    def test_with_overlays(self):
        base = Timeline()
        base.reserve(0.0, 1.0)
        ov = TimelineOverlay(base)
        ov.reserve(1.0, 2.0)
        other = Timeline()
        other.reserve(2.0, 3.0)
        assert earliest_joint_fit([ov, other], 0.0, 1.0) == 3.0
