"""The shared scale-aware epsilon, and the long-chain FP regression.

Absolute epsilons break at large magnitude: the ULP of 1e10 is ~2e-6,
so a 200-hop transfer chain whose times differ from the validator's
re-derivation by a few ULPs was spuriously rejected under the old
fixed ``1e-6`` tolerances.  These tests pin the scale-aware behavior.
"""

import pytest

from repro import Platform, validate_schedule
from repro.core import Schedule, SchedulingError, TaskGraph, TIME_EPS, time_tol
from repro.core.exceptions import ValidationError
from repro.core.schedule import CommEvent, TaskPlacement
from repro.heuristics import get_scheduler
from repro.simulate import replay_schedule


class TestTimeTol:
    def test_floor_near_zero(self):
        assert time_tol(0.0) == TIME_EPS
        assert time_tol(0.5, -0.25) == TIME_EPS

    def test_scales_with_magnitude(self):
        assert time_tol(2e9) == pytest.approx(2e9 * TIME_EPS)
        assert time_tol(1.0, -3e12, 5.0) == pytest.approx(3e12 * TIME_EPS)

    def test_shared_constants(self):
        from repro.core import validation
        from repro.core.tolerance import GUARD_FACTOR, guard_tol

        # the legacy absolute alias is retired: every comparison goes
        # through the scale-aware time_tol / guard_tol helpers
        assert not hasattr(validation, "TOL")
        # timeline overlap guards are internal-consistency checks: three
        # orders tighter than the validator epsilon (1e-9 floor)
        assert guard_tol(0.0) == GUARD_FACTOR * TIME_EPS
        assert guard_tol(1e9) == pytest.approx(GUARD_FACTOR * TIME_EPS * 1e9)

    def test_timeline_guard_scales_but_stays_tight(self):
        """A reservation overlapping by 1e-7 at magnitude 1 must still
        raise (the old 1e-9-absolute guard territory), while ULP noise
        at magnitude 1e9 must not."""
        from repro.core import Timeline
        from repro.core.exceptions import TimelineError

        tl = Timeline()
        tl.reserve(0.0, 1.0)
        with pytest.raises(TimelineError):
            tl.reserve(1.0 - 1e-7, 2.0)
        big = Timeline()
        big.reserve(0.0, 1e9)
        big.reserve(1e9 - 1e-4, 2e9)  # within 1e-9 relative at this scale

    def test_duration_tolerance_scales_with_duration_not_makespan(self):
        """A task at start ~1e9 whose recorded duration is off by 400
        units must fail validation (the tolerance operand is the
        duration being compared, not the absolute finish time)."""
        from repro.core.exceptions import ValidationError
        from repro.core.schedule import TaskPlacement
        from repro.core.validation import validate_durations

        g = TaskGraph.from_specs([("t", 5.0)], [])
        plat = Platform.homogeneous(1)
        sched = Schedule(g, plat, model="one-port")
        sched.placements["t"] = TaskPlacement("t", 0, 1e9, 1e9 + 405.0)
        with pytest.raises(ValidationError, match="duration"):
            validate_durations(sched)


def _chain_schedule(hops: int, scale: float, platform: Platform):
    """A ``hops``-transfer chain at time magnitude ``scale * hops``."""
    tasks = [(f"t{i}", scale) for i in range(hops + 1)]
    edges = [(f"t{i}", f"t{i + 1}", scale / 2) for i in range(hops)]
    graph = TaskGraph.from_specs(tasks, edges, name=f"chain-{hops}")
    alloc = {f"t{i}": i % 2 for i in range(hops + 1)}
    sched = get_scheduler("fixed", alloc=alloc).run(graph, platform, "one-port")
    validate_schedule(sched)
    return graph, sched


def _rescaled(sched: Schedule, factor: float) -> Schedule:
    """Every time in the schedule multiplied by ``factor``."""
    out = Schedule(
        sched.graph, sched.platform, model=sched.model, heuristic=sched.heuristic
    )
    out.placements = {
        t: TaskPlacement(t, p.proc, p.start * factor, p.finish * factor)
        for t, p in sched.placements.items()
    }
    out.comm_events = [
        CommEvent(
            e.src_task, e.dst_task, e.src_proc, e.dst_proc,
            e.start * factor, e.finish * factor, e.data, e.hop,
        )
        for e in sched.comm_events
    ]
    return out


class TestLongChainRegression:
    """200-hop transfer chain at ~1e9 magnitude: ULP-level deviations
    must pass validation and the tighten=False replay cross-check."""

    PLATFORM = Platform.homogeneous(2, cycle_time=1.0, link=1.0)

    def test_exact_chain_validates(self):
        _, sched = _chain_schedule(200, 1e7, self.PLATFORM)
        assert sched.makespan() > 1e9  # the magnitude that broke 1e-6 absolute
        checked = replay_schedule(sched, tighten=False)
        assert checked.makespan() == sched.makespan()

    def test_ulp_scale_deviation_accepted(self):
        """Times a relative 1e-12 *early* — far beyond the old absolute
        1e-6 tolerance at this magnitude (~2e-3 absolute), but exactly
        the accumulated-FP-error shape the shared epsilon must accept."""
        _, sched = _chain_schedule(200, 1e7, self.PLATFORM)
        jittered = _rescaled(sched, 1.0 - 1e-12)
        deviation = sched.makespan() - jittered.makespan()
        assert deviation > 1e-6  # the old absolute tolerance would reject
        validate_schedule(jittered)
        checked = replay_schedule(jittered, tighten=False)
        assert checked.makespan() == jittered.makespan()

    def test_genuine_violation_still_rejected(self):
        """A real constraint break (0.1% early) must still fail."""
        _, sched = _chain_schedule(50, 1e7, self.PLATFORM)
        broken = _rescaled(sched, 1.0 - 1e-3)
        with pytest.raises((ValidationError, SchedulingError)):
            validate_schedule(broken)
            replay_schedule(broken, tighten=False)

    def test_small_scale_keeps_absolute_floor(self):
        """At magnitude ~1 the historical absolute behavior remains: a
        5e-7 deviation passes, a 1e-3 one fails."""
        _, sched = _chain_schedule(10, 1.0, self.PLATFORM)
        validate_schedule(_rescaled(sched, 1.0 - 1e-8))
        with pytest.raises((ValidationError, SchedulingError)):
            broken = _rescaled(sched, 1.0 - 1e-1)
            validate_schedule(broken)
            replay_schedule(broken, tighten=False)
