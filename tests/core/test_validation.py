"""Unit tests for the independent schedule validators.

Each test builds a small schedule by hand — valid or subtly broken —
and checks that the validator accepts/rejects it with the right rule.
"""

import pytest

from repro.core import (
    Platform,
    Schedule,
    TaskGraph,
    ValidationError,
    is_valid,
    validate_schedule,
)


@pytest.fixture
def graph():
    g = TaskGraph(name="vee")
    g.add_task("a", 1.0)
    g.add_task("b", 1.0)
    g.add_task("c", 2.0)
    g.add_dependency("a", "c", 3.0)
    g.add_dependency("b", "c", 5.0)
    return g


@pytest.fixture
def platform():
    return Platform.homogeneous(3, cycle_time=1.0, link=1.0)


def valid_one_port(graph, platform) -> Schedule:
    """a on P0, b on P1, c on P2 with both messages serialized on P2's
    receive port: a->c in [1, 4), b->c in [4, 9), c starts at 9."""
    s = Schedule(graph, platform, model="one-port")
    s.place("a", 0, 0.0, 1.0)
    s.place("b", 1, 0.0, 1.0)
    s.record_comm("a", "c", 0, 2, 1.0, 3.0, 3.0)
    s.record_comm("b", "c", 1, 2, 4.0, 5.0, 5.0)
    s.place("c", 2, 9.0, 11.0)
    return s


class TestValidSchedules:
    def test_one_port_valid(self, graph, platform):
        validate_schedule(valid_one_port(graph, platform))

    def test_is_valid_true(self, graph, platform):
        assert is_valid(valid_one_port(graph, platform))

    def test_macro_valid(self, graph, platform):
        s = Schedule(graph, platform, model="macro-dataflow")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 1, 0.0, 1.0)
        # both messages in parallel; c waits for the slower (1 + 5 = 6)
        s.place("c", 2, 6.0, 8.0)
        validate_schedule(s)

    def test_local_edges_need_no_comm(self, graph, platform):
        s = Schedule(graph, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 0, 1.0, 2.0)
        s.place("c", 0, 2.0, 4.0)
        validate_schedule(s)


class TestCompleteness:
    def test_missing_task(self, graph, platform):
        s = Schedule(graph, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        with pytest.raises(ValidationError, match="not placed"):
            validate_schedule(s)

    def test_invalid_processor(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.placements["a"] = type(s.placements["a"])("a", 99, 0.0, 1.0)
        with pytest.raises(ValidationError, match="invalid processor"):
            validate_schedule(s)

    def test_negative_start(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.placements["a"] = type(s.placements["a"])("a", 0, -1.0, 0.0)
        with pytest.raises(ValidationError, match="before time 0"):
            validate_schedule(s)


class TestDurations:
    def test_wrong_duration(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.placements["c"] = type(s.placements["c"])("c", 2, 9.0, 10.0)  # w=2 needs 2
        with pytest.raises(ValidationError, match="duration"):
            validate_schedule(s)

    def test_heterogeneous_duration(self, graph):
        plat = Platform([2.0, 1.0, 1.0])
        s = Schedule(graph, plat, model="one-port")
        s.place("a", 0, 0.0, 2.0)  # w=1 on t=2
        s.place("b", 0, 2.0, 4.0)
        s.place("c", 0, 4.0, 8.0)  # w=2 on t=2
        validate_schedule(s)


class TestExclusivity:
    def test_overlapping_tasks_same_proc(self, graph, platform):
        s = Schedule(graph, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 0, 0.5, 1.5)
        s.place("c", 0, 1.5, 3.5)
        with pytest.raises(ValidationError, match="overlap"):
            validate_schedule(s)


class TestPrecedence:
    def test_child_starts_before_arrival(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.placements["c"] = type(s.placements["c"])("c", 2, 8.0, 10.0)
        with pytest.raises(ValidationError, match="before its data arrives"):
            validate_schedule(s)

    def test_macro_child_too_early(self, graph, platform):
        s = Schedule(graph, platform, model="macro-dataflow")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 1, 0.0, 1.0)
        s.place("c", 2, 5.0, 7.0)  # needs 6
        with pytest.raises(ValidationError, match="before its data arrives"):
            validate_schedule(s)

    def test_missing_comm_event(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.comm_events = [e for e in s.comm_events if e.src_task != "b"]
        with pytest.raises(ValidationError, match="no communication event"):
            validate_schedule(s)

    def test_local_edge_with_spurious_event(self, graph, platform):
        s = Schedule(graph, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 0, 1.0, 2.0)
        s.record_comm("a", "c", 0, 0, 1.0, 0.0, 3.0)
        s.place("c", 0, 2.0, 4.0)
        with pytest.raises(ValidationError):
            validate_schedule(s)

    def test_comm_starts_before_source_finish(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.comm_events[0] = type(s.comm_events[0])("a", "c", 0, 2, 0.5, 3.5, 3.0)
        with pytest.raises(ValidationError, match="before the source finishes"):
            validate_schedule(s)

    def test_comm_wrong_duration(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.comm_events[0] = type(s.comm_events[0])("a", "c", 0, 2, 1.0, 2.0, 3.0)
        with pytest.raises(ValidationError, match="duration"):
            validate_schedule(s)

    def test_comm_wrong_endpoint(self, graph, platform):
        s = valid_one_port(graph, platform)
        s.comm_events[0] = type(s.comm_events[0])("a", "c", 1, 2, 1.0, 4.0, 3.0)
        with pytest.raises(ValidationError, match="source task runs on"):
            validate_schedule(s)


class TestOnePortRule:
    def test_receive_overlap_rejected(self, graph, platform):
        s = Schedule(graph, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 1, 0.0, 1.0)
        # both messages into P2 at the same time: legal under macro, not 1-port
        s.record_comm("a", "c", 0, 2, 1.0, 3.0, 3.0)
        s.record_comm("b", "c", 1, 2, 1.0, 5.0, 5.0)
        s.place("c", 2, 6.0, 8.0)
        with pytest.raises(ValidationError, match="one-port violation"):
            validate_schedule(s)

    def test_send_overlap_rejected(self, platform):
        g = TaskGraph()
        g.add_task("src", 1.0)
        g.add_task("x", 1.0)
        g.add_task("y", 1.0)
        g.add_dependency("src", "x", 2.0)
        g.add_dependency("src", "y", 2.0)
        s = Schedule(g, platform, model="one-port")
        s.place("src", 0, 0.0, 1.0)
        s.record_comm("src", "x", 0, 1, 1.0, 2.0, 2.0)
        s.record_comm("src", "y", 0, 2, 1.0, 2.0, 2.0)  # same send window!
        s.place("x", 1, 3.0, 4.0)
        s.place("y", 2, 3.0, 4.0)
        with pytest.raises(ValidationError, match="one-port violation"):
            validate_schedule(s)

    def test_same_schedule_fine_under_macro(self, graph, platform):
        """The one-port-violating double receive is fine in macro-dataflow."""
        s = Schedule(graph, platform, model="macro-dataflow")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 1, 0.0, 1.0)
        s.record_comm("a", "c", 0, 2, 1.0, 3.0, 3.0)
        s.record_comm("b", "c", 1, 2, 1.0, 5.0, 5.0)
        s.place("c", 2, 6.0, 8.0)
        validate_schedule(s)

    def test_unknown_model_rejected(self, graph, platform):
        s = valid_one_port(graph, platform)
        with pytest.raises(ValidationError, match="unknown model"):
            validate_schedule(s, model="quantum")


class TestMultiHop:
    def test_valid_two_hop_chain(self):
        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        plat = Platform.homogeneous(3, cycle_time=1.0, link=1.0)
        s = Schedule(g, plat, model="one-port")
        s.place("u", 0, 0.0, 1.0)
        s.record_comm("u", "v", 0, 1, 1.0, 2.0, 2.0, hop=0)
        s.record_comm("u", "v", 1, 2, 3.0, 2.0, 2.0, hop=1)
        s.place("v", 2, 5.0, 6.0)
        validate_schedule(s)

    def test_broken_chain_rejected(self):
        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        plat = Platform.homogeneous(4, cycle_time=1.0, link=1.0)
        s = Schedule(g, plat, model="one-port")
        s.place("u", 0, 0.0, 1.0)
        s.record_comm("u", "v", 0, 1, 1.0, 2.0, 2.0, hop=0)
        s.record_comm("u", "v", 2, 3, 3.0, 2.0, 2.0, hop=1)  # 1 != 2: broken
        s.place("v", 3, 5.0, 6.0)
        with pytest.raises(ValidationError, match="hop"):
            validate_schedule(s)

    def test_hop_leaves_too_early_rejected(self):
        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        plat = Platform.homogeneous(3, cycle_time=1.0, link=1.0)
        s = Schedule(g, plat, model="one-port")
        s.place("u", 0, 0.0, 1.0)
        s.record_comm("u", "v", 0, 1, 1.0, 2.0, 2.0, hop=0)
        s.record_comm("u", "v", 1, 2, 2.0, 2.0, 2.0, hop=1)  # hop0 ends at 3
        s.place("v", 2, 5.0, 6.0)
        with pytest.raises(ValidationError, match="before hop"):
            validate_schedule(s)
