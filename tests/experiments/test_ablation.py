"""Unit tests for the ablation experiment functions."""

import pytest

from repro.experiments import (
    b_sensitivity,
    baseline_comparison,
    comm_ratio_sweep,
    ilha_variant_ablation,
    insertion_ablation,
    model_comparison,
    search_budget_ablation,
)
from repro.graphs import irregular_testbed, laplace_graph, lu_graph


class TestBSensitivity:
    def test_one_cell_per_b(self):
        cells = b_sensitivity(lu_graph(6), [2, 4, 8])
        assert [c.size for c in cells] == [2, 4, 8]
        assert all(c.figure == "ablation-b" for c in cells)

    def test_kwargs_forwarded(self):
        cells = b_sensitivity(lu_graph(6), [4], single_comm_scan=True)
        assert len(cells) == 1


class TestVariantAblation:
    def test_four_variants(self):
        cells = ilha_variant_ablation(lu_graph(6), b=4)
        labels = [c.heuristic for c in cells]
        assert labels == ["ilha-plain", "ilha-scan", "ilha-resched", "ilha-scan+resched"]


class TestModelComparison:
    def test_all_models_and_heuristics(self):
        cells = model_comparison(lu_graph(6), b=4)
        assert len(cells) == 8
        labels = {c.heuristic for c in cells}
        assert "heft/macro-dataflow" in labels
        assert "heft/no-overlap" in labels

    def test_macro_not_slower_than_restricted_models(self):
        """Macro relaxes every other model; for min-EFT greedy heuristics
        on this graph the ordering holds measurably."""
        cells = model_comparison(laplace_graph(5), b=10)
        by_label = {c.heuristic: c.makespan for c in cells}
        assert by_label["heft/macro-dataflow"] <= by_label["heft/no-overlap"] + 1e-9


class TestCommRatioSweep:
    def test_rows_per_ratio(self):
        cells = comm_ratio_sweep(
            lambda c: lu_graph(6, comm_ratio=c), [0.0, 5.0, 10.0], b=4
        )
        assert len(cells) == 6

    def test_zero_ratio_reaches_higher_speedup(self):
        cells = comm_ratio_sweep(
            lambda c: lu_graph(10, comm_ratio=c), [0.0, 20.0], b=4
        )
        heft = {c.size: c.speedup for c in cells if c.heuristic == "heft"}
        assert heft[0] > heft[20]


class TestInsertionAblation:
    def test_two_rows(self):
        cells = insertion_ablation(lu_graph(6))
        assert [c.heuristic for c in cells] == ["heft-insertion", "heft-append"]

    def test_insertion_not_worse_on_lu(self):
        cells = insertion_ablation(lu_graph(10))
        by = {c.heuristic: c.makespan for c in cells}
        # not a theorem, but holds on the triangular testbeds we ship
        assert by["heft-insertion"] <= by["heft-append"] + 1e-9


class TestBaselineComparison:
    def test_all_baselines_present(self):
        cells = baseline_comparison(lu_graph(5), model="one-port", b=4)
        names = {c.heuristic for c in cells}
        assert {"pct", "bil", "cpop", "gdl", "min-min", "heft"} <= names

    def test_every_cell_validated_and_bounded(self):
        cells = baseline_comparison(lu_graph(5), model="one-port")
        for c in cells:
            assert c.makespan >= c.lower_bound - 1e-9


class TestSearchBudgetAblation:
    def test_one_row_per_budget_never_worse_with_effort(self):
        cells = search_budget_ablation(irregular_testbed(40, seed=1), [0, 200, 800])
        assert [c.size for c in cells] == [0, 200, 800]
        assert all(c.figure == "ablation-search-budget" for c in cells)
        makespans = [c.makespan for c in cells]
        # budget 0 is the tightened base; more budget never hurts
        assert makespans[1] <= makespans[0] + 1e-6
        assert makespans[2] <= makespans[0] + 1e-6

    def test_base_kwargs_and_seed_visible_in_label(self):
        cells = search_budget_ablation(
            lu_graph(5), [50], base="ilha", base_kwargs={"b": 4}
        )
        assert cells[0].heuristic == "ils(ilha(b=4);budget=50,seed=0)"
