"""Unit tests for the experiment harness, figures, report, and I/O."""

import pytest

from repro.core import ConfigurationError
from repro.experiments import (
    FIGURES,
    PAPER_BEST_B,
    PAPER_PERFECT_BALANCE,
    PAPER_SPEEDUP_BOUND,
    available_figures,
    format_cells,
    format_comparison,
    format_run,
    paper_platform,
    read_csv,
    read_json,
    run_cell,
    run_figure,
    write_csv,
    write_json,
)
from repro.graphs import fork_join_graph
from repro.heuristics import HEFT


class TestConfig:
    def test_platform_matches_section_5_2(self):
        plat = paper_platform()
        assert plat.num_processors == 10
        assert sorted(plat.cycle_times) == [6.0] * 5 + [10.0] * 3 + [15.0] * 2
        assert plat.speedup_bound() == pytest.approx(PAPER_SPEEDUP_BOUND)
        assert plat.perfect_balance_count() == PAPER_PERFECT_BALANCE

    def test_best_b_covers_all_testbeds(self):
        assert set(PAPER_BEST_B) == {
            "fork-join", "lu", "laplace", "ldmt", "doolittle", "stencil",
        }


class TestHarness:
    def test_run_cell_records_metrics(self):
        plat = paper_platform()
        graph = fork_join_graph(10)
        cell, sched = run_cell(
            "figX", "fork-join", 10, graph, HEFT(), "heft", plat, "one-port"
        )
        assert cell.num_tasks == 12
        assert cell.makespan == pytest.approx(sched.makespan())
        assert cell.speedup == pytest.approx(sched.speedup())
        assert cell.lower_bound <= cell.makespan + 1e-9
        assert cell.runtime_s >= 0.0

    def test_validation_enabled_by_default(self):
        # run_cell validates; a correct scheduler passes silently
        plat = paper_platform()
        run_cell("f", "t", 5, fork_join_graph(5), HEFT(), "heft", plat)


class TestFigures:
    def test_all_six_defined(self):
        assert available_figures() == [
            "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
        ]

    def test_specs_reference_paper_b(self):
        for fig, spec in FIGURES.items():
            assert spec.paper_b == PAPER_BEST_B[spec.testbed]
            assert len(spec.default_sizes) == 5
            assert spec.paper_outcome

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            run_figure("fig99")

    def test_run_figure_small(self):
        run = run_figure("fig07", sizes=[6, 10])
        assert run.sizes() == [6, 10]
        assert set(run.heuristics()) == {"heft", "ilha(B=38)"}
        assert len(run.cells) == 4
        series = run.series("heft")
        assert [size for size, _ in series] == [6, 10]

    def test_run_figure_tuned_adds_series(self):
        run = run_figure("fig07", sizes=[6], tuned=True)
        assert "ilha-tuned" in run.heuristics()

    def test_progress_callback_invoked(self):
        messages = []
        run_figure("fig07", sizes=[5], progress=messages.append)
        assert len(messages) == 2  # one per heuristic


class TestReport:
    @pytest.fixture
    def run(self):
        return run_figure("fig07", sizes=[6, 10])

    def test_format_run_contains_series(self, run):
        text = format_run(run)
        assert "heft" in text
        assert "ilha(B=38)" in text
        assert "    10" in text

    def test_format_comparison_has_gain_column(self, run):
        text = format_comparison(run)
        assert "gain%" in text

    def test_format_cells_flat_dump(self, run):
        text = format_cells(run.cells)
        assert "fig07" in text
        assert len(text.splitlines()) == len(run.cells) + 1


class TestIO:
    @pytest.fixture
    def cells(self):
        return run_figure("fig07", sizes=[5, 8]).cells

    def test_csv_roundtrip(self, cells, tmp_path):
        path = write_csv(cells, tmp_path / "cells.csv")
        back = read_csv(path)
        assert back == cells

    def test_json_roundtrip(self, cells, tmp_path):
        path = write_json(cells, tmp_path / "cells.json")
        back = read_json(path)
        assert back == cells
