"""Atomic export: temp-file + rename writers and the CLI --force guard."""

import os

import pytest

from repro.cli import main
from repro.experiments import read_csv, read_json, write_csv, write_json
from repro.experiments.harness import CellResult


def _cell(makespan=100.0):
    return CellResult(
        figure="f", testbed="lu", size=4, num_tasks=10, heuristic="heft",
        model="one-port", makespan=makespan, speedup=2.0, num_comms=3,
        total_comm_time=5.0, utilization=0.5, lower_bound=50.0, runtime_s=0.1,
    )


class _Boom(Exception):
    pass


def _exploding_cells():
    yield _cell()
    raise _Boom


class TestAtomicWriters:
    @pytest.mark.parametrize("writer,reader,name", [
        (write_csv, read_csv, "cells.csv"),
        (write_json, read_json, "cells.json"),
    ])
    def test_roundtrip_and_no_temp_left(self, tmp_path, writer, reader, name):
        path = tmp_path / name
        writer([_cell()], path)
        assert reader(path) == [_cell()]
        assert os.listdir(tmp_path) == [name]

    @pytest.mark.parametrize("writer,reader,name", [
        (write_csv, read_csv, "cells.csv"),
        (write_json, read_json, "cells.json"),
    ])
    def test_interrupted_write_leaves_original_intact(
        self, tmp_path, writer, reader, name
    ):
        path = tmp_path / name
        writer([_cell(1.0)], path)
        with pytest.raises(_Boom):
            writer(_exploding_cells(), path)
        # the original is untouched and no temp debris remains
        assert [c.makespan for c in reader(path)] == [1.0]
        assert os.listdir(tmp_path) == [name]

    def test_interrupted_write_creates_nothing(self, tmp_path):
        path = tmp_path / "cells.json"
        with pytest.raises(_Boom):
            write_json(_exploding_cells(), path)
        assert os.listdir(tmp_path) == []

    def test_overwrite_false_refuses_clobber(self, tmp_path):
        path = tmp_path / "cells.csv"
        write_csv([_cell(1.0)], path)
        with pytest.raises(FileExistsError):
            write_csv([_cell(2.0)], path, overwrite=False)
        assert [c.makespan for c in read_csv(path)] == [1.0]
        write_csv([_cell(2.0)], path, overwrite=True)
        assert [c.makespan for c in read_csv(path)] == [2.0]

    def test_exported_file_respects_umask(self, tmp_path):
        """mkstemp creates 0600 temps; the published file must carry the
        permissions a plain open() would have produced."""
        old = os.umask(0o022)
        try:
            path = tmp_path / "cells.csv"
            write_csv([_cell()], path)
            assert os.stat(path).st_mode & 0o777 == 0o644
        finally:
            os.umask(old)

    def test_overwrite_false_on_fresh_path_writes(self, tmp_path):
        path = tmp_path / "cells.json"
        write_json([_cell()], path, overwrite=False)
        assert read_json(path) == [_cell()]


class TestCampaignExportForce:
    GRID = ["--testbeds", "fork-join", "--sizes", "5",
            "--heuristics", "heft", "--seeds", "0"]

    def test_export_refuses_then_forces(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", *self.GRID, "--cache-dir", cache,
                     "--quiet"]) == 0
        capsys.readouterr()
        out_path = str(tmp_path / "cells.csv")
        assert main(["campaign", "export", *self.GRID, "--cache-dir", cache,
                     "--out", out_path]) == 0
        assert "exported" in capsys.readouterr().out

        assert main(["campaign", "export", *self.GRID, "--cache-dir", cache,
                     "--out", out_path]) == 1
        assert "refusing to overwrite" in capsys.readouterr().out
        assert read_csv(out_path)  # untouched, still readable

        assert main(["campaign", "export", *self.GRID, "--cache-dir", cache,
                     "--out", out_path, "--force"]) == 0
        assert "exported" in capsys.readouterr().out
