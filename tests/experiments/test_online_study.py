"""The policy-vs-noise study grid and its formatter."""

from repro.experiments import format_online_study, online_policy_study


def test_study_grid_shape_and_formatting():
    rows = online_policy_study(
        testbed="fork-join", size=6, jobs=3, arrival="poisson:rate=0.01",
        policies=("static", "ready-dispatch"),
        noises=("exact", "lognormal:sigma=0.3"),
        seed=2,
    )
    assert len(rows) == 4
    assert {(r["policy"], r["noise"]) for r in rows} == {
        ("static", "exact"),
        ("static", "lognormal:sigma=0.3"),
        ("ready-dispatch", "exact"),
        ("ready-dispatch", "lognormal:sigma=0.3"),
    }
    for r in rows:
        assert r["jobs"] == 3
        assert r["mean_stretch"] >= 1.0
        assert r["events"] > 0
    table = format_online_study(rows)
    assert "static" in table
    assert "ready-dispatch" in table
    assert "lognormal:sigma=0.3" in table


def test_study_is_deterministic():
    kwargs = dict(testbed="fork-join", size=6, jobs=3,
                  arrival="poisson:rate=0.01",
                  policies=("static",), noises=("straggler",), seed=4)
    a = online_policy_study(**kwargs)
    b = online_policy_study(**kwargs)
    for row in (*a, *b):
        row.pop("events_per_s")
    assert a == b
