"""Unit tests for fork graphs, the toy example, and random DAGs."""

import pytest

from repro.core import GraphError
from repro.graphs import (
    PAPER_CHILD_ORDER,
    figure1_example,
    fork_graph,
    layered_random,
    random_dag,
    toy_graph,
    toy_priority_key,
    uniform_fork,
)


class TestFork:
    def test_explicit_weights_and_data(self):
        g = fork_graph([2.0, 3.0], [5.0, 7.0], parent_weight=1.0)
        assert g.weight("v0") == 1.0
        assert g.weight("v1") == 2.0
        assert g.data("v0", "v2") == 7.0

    def test_data_defaults_to_weights(self):
        g = fork_graph([2.0, 3.0])
        assert g.data("v0", "v1") == 2.0
        assert g.data("v0", "v2") == 3.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            fork_graph([1.0], [1.0, 2.0])

    def test_uniform_fork(self):
        g = uniform_fork(4, weight=2.0, data=3.0)
        assert g.num_tasks == 5
        assert all(g.data("v0", f"v{i}") == 3.0 for i in range(1, 5))

    def test_figure1_shape(self):
        g = figure1_example()
        assert g.num_tasks == 7
        assert g.out_degree("v0") == 6
        assert all(g.weight(v) == 1.0 for v in g.tasks())


class TestToy:
    def test_shape(self):
        g = toy_graph()
        assert g.num_tasks == 10
        assert g.out_degree("a0") == 5
        assert g.out_degree("b0") == 5
        assert sorted(g.predecessors("ab1")) == ["a0", "b0"]

    def test_priority_key_matches_paper_order(self):
        children = sorted(PAPER_CHILD_ORDER, key=toy_priority_key)
        assert list(children) == list(PAPER_CHILD_ORDER)

    def test_roots_come_first(self):
        tasks = sorted(toy_graph().tasks(), key=toy_priority_key)
        assert tasks[:2] == ["a0", "b0"]


class TestLayeredRandom:
    def test_deterministic_by_seed(self):
        a = layered_random(4, 5, seed=11)
        b = layered_random(4, 5, seed=11)
        assert list(a.tasks()) == list(b.tasks())
        assert list(a.edges()) == list(b.edges())

    def test_every_non_entry_has_parent(self):
        g = layered_random(6, 4, density=0.1, seed=3)
        entries = set(g.entry_tasks())
        for v in g.tasks():
            if v not in entries:
                assert g.in_degree(v) >= 1

    def test_entries_all_in_layer_zero(self):
        g = layered_random(5, 3, density=0.9, seed=5)
        for v in g.entry_tasks():
            assert v[0] == 0

    def test_acyclic(self):
        layered_random(8, 6, seed=2).validate()

    def test_bad_params(self):
        with pytest.raises(GraphError):
            layered_random(0, 3)
        with pytest.raises(GraphError):
            layered_random(3, 3, density=1.5)


class TestRandomDag:
    def test_deterministic_by_seed(self):
        a = random_dag(10, seed=4)
        b = random_dag(10, seed=4)
        assert list(a.edges()) == list(b.edges())

    def test_edge_prob_extremes(self):
        none = random_dag(6, edge_prob=0.0, seed=1)
        full = random_dag(6, edge_prob=1.0, seed=1)
        assert none.num_edges == 0
        assert full.num_edges == 15  # 6 choose 2

    def test_acyclic(self):
        random_dag(12, edge_prob=0.5, seed=9).validate()

    def test_bad_params(self):
        with pytest.raises(GraphError):
            random_dag(0)
        with pytest.raises(GraphError):
            random_dag(5, edge_prob=-0.1)
