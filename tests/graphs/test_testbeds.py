"""Unit tests for the six paper testbeds: structure, weights, comms."""

import pytest

from repro.core import GraphError
from repro.graphs import (
    PAPER_COMM_RATIO,
    available_testbeds,
    doolittle_graph,
    fork_join_graph,
    laplace_graph,
    ldmt_graph,
    lu_graph,
    lu_task_count,
    make_testbed,
    stencil_graph,
    stencil_grid,
)


def assert_source_proportional(graph, ratio=PAPER_COMM_RATIO):
    """Section 5.2: comm cost of every edge = c * weight of the source."""
    for u, v in graph.edges():
        assert graph.data(u, v) == pytest.approx(ratio * graph.weight(u))


class TestRegistry:
    def test_all_families_registered(self):
        assert set(available_testbeds()) == {
            "fork-join",
            "lu",
            "laplace",
            "ldmt",
            "doolittle",
            "stencil",
            "layered",
            "irregular",
        }

    def test_make_testbed_dispatch(self):
        g = make_testbed("lu", 5)
        assert g.name == "lu-5"
        with pytest.raises(Exception):
            make_testbed("nonexistent", 5)


class TestForkJoin:
    def test_structure(self):
        g = fork_join_graph(5)
        assert g.num_tasks == 7
        assert g.num_edges == 10
        assert len(g.entry_tasks()) == 1
        assert len(g.exit_tasks()) == 1

    def test_unit_weights(self):
        g = fork_join_graph(5)
        assert all(g.weight(v) == 1.0 for v in g.tasks())

    def test_comm_policy(self):
        assert_source_proportional(fork_join_graph(6))

    def test_depth_is_three_levels(self):
        assert [len(level) for level in fork_join_graph(4).levels()] == [1, 4, 1]

    def test_needs_one_interior(self):
        with pytest.raises(GraphError):
            fork_join_graph(0)


class TestLU:
    def test_task_count_closed_form(self):
        for n in (2, 3, 5, 10):
            assert lu_graph(n).num_tasks == lu_task_count(n)

    def test_level_weights_are_n_minus_k(self):
        n = 6
        g = lu_graph(n)
        for k in range(1, n):
            assert g.weight(("p", k)) == n - k
            for j in range(k + 1, n + 1):
                assert g.weight(("u", k, j)) == n - k

    def test_pivot_feeds_all_updates(self):
        g = lu_graph(5)
        for j in range(2, 6):
            assert g.has_edge(("p", 1), ("u", 1, j))

    def test_column_chains(self):
        g = lu_graph(5)
        assert g.has_edge(("u", 1, 3), ("u", 2, 3))
        assert g.has_edge(("u", 1, 2), ("p", 2))

    def test_acyclic_and_connected_levels(self):
        g = lu_graph(7)
        g.validate()
        assert len(g.entry_tasks()) == 1  # only p(1)

    def test_comm_policy(self):
        assert_source_proportional(lu_graph(5))

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            lu_graph(1)


class TestLaplace:
    def test_grid_size(self):
        g = laplace_graph(4)
        assert g.num_tasks == 16
        # edges: 2 * m * (m-1)
        assert g.num_edges == 24

    def test_all_paths_equal_length(self):
        """Every node on a critical path — the property the paper cites."""
        g = laplace_graph(5, comm_ratio=0.0)
        depth = {}
        for v in g.topological_order():
            preds = g.predecessors(v)
            depth[v] = 0 if not preds else 1 + max(depth[p] for p in preds)
        height = {}
        for v in reversed(g.topological_order()):
            succs = g.successors(v)
            height[v] = 0 if not succs else 1 + max(height[s] for s in succs)
        assert len({depth[v] + height[v] for v in g.tasks()}) == 1

    def test_unit_weights_and_comm(self):
        g = laplace_graph(4)
        assert all(g.weight(v) == 1.0 for v in g.tasks())
        assert_source_proportional(g)


class TestStencil:
    def test_interior_has_three_parents(self):
        g = stencil_graph(5)
        assert sorted(g.predecessors((2, 2))) == [(1, 1), (1, 2), (1, 3)]

    def test_border_has_two_parents(self):
        g = stencil_graph(5)
        assert sorted(g.predecessors((1, 0))) == [(0, 0), (0, 1)]

    def test_rectangle(self):
        g = stencil_grid(7, 3)
        assert g.num_tasks == 21
        assert len(g.levels()) == 3

    def test_comm_policy(self):
        assert_source_proportional(stencil_graph(4))


class TestDoolittleAndLDMt:
    def test_doolittle_weights_grow_with_level(self):
        n = 6
        g = doolittle_graph(n)
        for k in range(1, n):
            assert g.weight(("p", k)) == k

    def test_ldmt_weights_grow_with_level(self):
        n = 5
        g = ldmt_graph(n)
        for k in range(1, n):
            assert g.weight(("d", k)) == k
            for j in range(k + 1, n + 1):
                assert g.weight(("l", k, j)) == k
                assert g.weight(("m", k, j)) == k

    def test_ldmt_roughly_twice_doolittle(self):
        n = 8
        doo = doolittle_graph(n).num_tasks
        ldm = ldmt_graph(n).num_tasks
        assert ldm >= 1.7 * doo

    def test_ldmt_two_families_independent(self):
        g = ldmt_graph(5)
        # l and m chains never cross except through the diagonal tasks
        for u, v in g.edges():
            if u[0] == "l":
                assert v[0] in ("l", "d")
            if u[0] == "m":
                assert v[0] in ("m", "d")

    def test_comm_policy(self):
        assert_source_proportional(doolittle_graph(5))
        assert_source_proportional(ldmt_graph(5))

    def test_validate_acyclic(self):
        doolittle_graph(7).validate()
        ldmt_graph(7).validate()
