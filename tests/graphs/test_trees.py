"""Unit tests for the tree-family generators."""

import pytest

from repro import HEFT, validate_schedule
from repro.core import GraphError
from repro.graphs.trees import diamond_chain, in_tree, out_tree


class TestOutTree:
    def test_node_count(self):
        # depth 3 binary tree: 1 + 2 + 4 + 8 = 15
        assert out_tree(3, 2).num_tasks == 15

    def test_single_root(self):
        g = out_tree(3, 2)
        assert g.entry_tasks() == [(0, 0)]
        assert len(g.exit_tasks()) == 8

    def test_every_internal_node_has_arity_children(self):
        g = out_tree(2, 3)
        assert g.out_degree((0, 0)) == 3
        assert g.out_degree((1, 1)) == 3
        assert g.out_degree((2, 5)) == 0

    def test_depth_zero(self):
        assert out_tree(0, 5).num_tasks == 1

    def test_bad_params(self):
        with pytest.raises(GraphError):
            out_tree(-1, 2)
        with pytest.raises(GraphError):
            out_tree(2, 0)


class TestInTree:
    def test_node_count(self):
        assert in_tree(3, 2).num_tasks == 15

    def test_single_sink(self):
        g = in_tree(3, 2)
        assert g.exit_tasks() == [(3, 0)]
        assert len(g.entry_tasks()) == 8

    def test_reduction_in_degree(self):
        g = in_tree(2, 4)
        assert g.in_degree((2, 0)) == 4
        assert g.in_degree((0, 3)) == 0

    def test_mirror_of_out_tree(self):
        assert in_tree(3, 2).num_tasks == out_tree(3, 2).num_tasks
        assert in_tree(3, 2).num_edges == out_tree(3, 2).num_edges


class TestDiamondChain:
    def test_node_count(self):
        # stages * width parallel + stages+1 syncs
        assert diamond_chain(3, 4).num_tasks == 3 * 4 + 4

    def test_level_structure(self):
        g = diamond_chain(2, 3)
        widths = [len(level) for level in g.levels()]
        assert widths == [1, 3, 1, 3, 1]

    def test_bad_params(self):
        with pytest.raises(GraphError):
            diamond_chain(0, 3)


class TestSchedulingTrees:
    """Trees are one-port stress tests: hot ports at every internal node."""

    def test_schedules_validate(self, paper_platform):
        for g in (out_tree(3, 3), in_tree(3, 3), diamond_chain(3, 8)):
            sched = HEFT().run(g, paper_platform, "one-port")
            validate_schedule(sched)
            assert sched.is_complete()

    def test_broadcast_serializes_on_root_port(self, five_identical):
        """All remote children of the root queue on one send port."""
        g = out_tree(1, 4, weight=1.0, comm_ratio=2.0)
        sched = HEFT().run(g, five_identical, "one-port")
        validate_schedule(sched)
        root_sends = sorted(
            (e for e in sched.comm_events if e.src_task == (0, 0)),
            key=lambda e: e.start,
        )
        for a, b in zip(root_sends, root_sends[1:]):
            assert b.start >= a.finish - 1e-9
