"""Cross-backend equivalence: numpy array backend vs pure Python.

The acceptance property of the backend registry: for every registered
heuristic x flat-capable model x testbed, the ``numpy`` backend
(``ArraySchedulerState``: fused sweeps, gap-indexed rows, frontier
propagation) produces *bit-identical* schedules — placements, starts,
finishes, and communication events, exact float equality — to the
pure-Python default.

Also here: the backend registry surface (selection precedence, unknown
names, the ``REPRO_BACKEND`` environment channel) and the
fallback-visibility regressions — a model without a flat booker must
say so (one ``repro.heuristics`` log warning) and record the active
engine in ``Schedule.state_impl``.
"""

import logging
import math

import pytest

from repro import Platform
from repro.core import TaskGraph
from repro.core.exceptions import ConfigurationError
from repro.graphs import irregular_testbed, layered_testbed, lu_graph
from repro.heuristics import available_schedulers, get_scheduler
from repro.heuristics.base import _FALLBACK_WARNED
from repro.kernel import backends
from repro.kernel.backends import (
    available_backends,
    current_backend_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.models import RoutedOnePortModel, make_model

TESTBEDS = {
    "lu": lambda: lu_graph(8),
    "layered": lambda: layered_testbed(5, seed=7),
    "irregular": lambda: irregular_testbed(40, seed=3),
}

#: Constructor overrides for schedulers that need arguments; ``None``
#: marks schedulers excluded from the sweep (fixed needs a per-graph
#: allocation and is exercised separately below; ils improves through
#: replay, not through SchedulerState, and multiplies runtime).
SCHEDULER_KWARGS = {
    "fixed": None,
    "ils": None,
    "ilha": {"b": 4, "single_comm_scan": True, "reschedule": True},
}

MODELS = ["one-port", "macro-dataflow", "uni-port", "no-overlap"]


def assert_identical(a, b):
    """Exact equality of two schedules, field by field."""
    assert a.placements.keys() == b.placements.keys()
    for task, placement in a.placements.items():
        other = b.placements[task]
        assert placement.proc == other.proc, f"proc drift on {task!r}"
        assert placement.start == other.start, f"start drift on {task!r}"
        assert placement.finish == other.finish, f"finish drift on {task!r}"
    assert sorted(a.comm_events) == sorted(b.comm_events)
    assert a.makespan() == b.makespan()


def run_both_backends(scheduler, graph, platform, model_name):
    with use_backend("python"):
        ref = scheduler.run(graph, platform, make_model(platform, model_name))
    with use_backend("numpy"):
        arr = scheduler.run(graph, platform, make_model(platform, model_name))
    return ref, arr


@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("testbed", sorted(TESTBEDS))
@pytest.mark.parametrize(
    "name",
    [n for n in available_schedulers() if SCHEDULER_KWARGS.get(n, {}) is not None],
)
def test_numpy_matches_python_for_every_heuristic(
    name, testbed, model_name, paper_platform
):
    scheduler = get_scheduler(name, **SCHEDULER_KWARGS.get(name, {}))
    graph = TESTBEDS[testbed]()
    ref, arr = run_both_backends(scheduler, graph, paper_platform, model_name)
    assert_identical(ref, arr)


@pytest.mark.parametrize("name", ["heft", "ilha"])
@pytest.mark.parametrize("seed", [0, 11])
def test_large_irregular_fuzz(name, seed, paper_platform):
    """1000-task instances push rows past the gap-index threshold, so
    the indexed scans, mirror extension, and the dirty-watermark
    invalidation all run — and must not move a single float."""
    graph = irregular_testbed(1000, seed=seed)
    scheduler = get_scheduler(name)
    ref, arr = run_both_backends(scheduler, graph, paper_platform, "one-port")
    assert_identical(ref, arr)


def test_fixed_allocation_equivalence(paper_platform):
    graph = lu_graph(6)
    alloc = {t: i % paper_platform.num_processors for i, t in enumerate(graph)}
    scheduler = get_scheduler("fixed", alloc=alloc)
    ref, arr = run_both_backends(scheduler, graph, paper_platform, "one-port")
    assert_identical(ref, arr)


def test_state_impl_recorded_per_backend(paper_platform):
    graph = lu_graph(4)
    with use_backend("python"):
        sched = get_scheduler("heft").run(graph, paper_platform, "one-port")
    assert sched.state_impl == "flat-python"
    assert sched.summary()["state_impl"] == "flat-python"
    with use_backend("numpy"):
        sched = get_scheduler("heft").run(graph, paper_platform, "one-port")
    assert sched.state_impl == "flat-numpy"


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_backends_registered(self):
        names = available_backends()
        assert "python" in names and "numpy" in names

    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
        monkeypatch.setattr(backends, "_ACTIVE", None)
        assert current_backend_name() == "python"

    def test_environment_channel(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "numpy")
        monkeypatch.setattr(backends, "_ACTIVE", None)
        assert current_backend_name() == "numpy"

    def test_unknown_environment_value_falls_back(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "fortran")
        monkeypatch.setattr(backends, "_ACTIVE", None)
        assert current_backend_name() == "python"

    def test_explicit_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "python")
        with use_backend("numpy"):
            assert current_backend_name() == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            set_backend("fortran")
        with pytest.raises(ConfigurationError):
            get_backend("fortran")

    def test_use_backend_restores(self):
        before = current_backend_name()
        with use_backend("numpy"):
            assert current_backend_name() == "numpy"
        assert current_backend_name() == before


# ----------------------------------------------------------------------
# fallback visibility (regression: the routed model used to fall back
# to the object path silently)
# ----------------------------------------------------------------------
class TestFallbackVisibility:
    def _routed_run(self):
        inf = math.inf
        line = Platform(
            [1.0, 1.0, 1.0],
            [[0.0, 1.0, inf], [1.0, 0.0, 1.0], [inf, 1.0, 0.0]],
        )
        graph = TaskGraph.from_specs(
            [("u", 2.0), ("v", 3.0), ("w", 1.0)],
            [("u", "v", 4.0), ("v", "w", 2.0)],
        )
        alloc = {"u": 0, "v": 2, "w": 0}
        return get_scheduler("fixed", alloc=alloc), graph, line

    def test_object_fallback_warns_once_and_is_recorded(self, caplog):
        scheduler, graph, line = self._routed_run()
        _FALLBACK_WARNED.discard("routed")
        with caplog.at_level(logging.WARNING, logger="repro.heuristics"):
            sched = scheduler.run(graph, line, RoutedOnePortModel(line))
            again = scheduler.run(graph, line, RoutedOnePortModel(line))
        fallback = [r for r in caplog.records if "no flat booker" in r.getMessage()]
        assert len(fallback) == 1, "expected exactly one fallback warning"
        assert fallback[0].levelno == logging.WARNING
        assert fallback[0].name == "repro.heuristics"
        assert sched.state_impl == "object"
        assert again.state_impl == "object"

    def test_numpy_backend_does_not_apply_to_object_path(self, caplog):
        """Backend selection is a flat-path concern: the routed model
        still runs (and says so) on the object path under numpy."""
        scheduler, graph, line = self._routed_run()
        _FALLBACK_WARNED.discard("routed")
        with use_backend("numpy"):
            with caplog.at_level(logging.WARNING, logger="repro.heuristics"):
                sched = scheduler.run(graph, line, RoutedOnePortModel(line))
        assert sched.state_impl == "object"
        assert any("no flat booker" in r.getMessage() for r in caplog.records)

    def test_flat_models_do_not_warn(self, paper_platform, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.heuristics"):
            get_scheduler("heft").run(lu_graph(4), paper_platform, "one-port")
        assert not [r for r in caplog.records if "no flat booker" in r.getMessage()]
