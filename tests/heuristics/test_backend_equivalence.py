"""Cross-backend equivalence: numpy and cext backends vs pure Python.

The acceptance property of the backend registry: for every registered
heuristic x flat-capable model x testbed, the accelerated backends —
``numpy`` (``ArraySchedulerState``: fused sweeps, gap-indexed rows,
frontier propagation) and ``cext`` (``CextSchedulerState``: the
compiled C booking engine) — produce *bit-identical* schedules:
placements, starts, finishes, and communication events, exact float
equality, against the pure-Python default.

Also here: the backend registry surface (selection precedence, unknown
names, the ``REPRO_BACKEND`` environment channel) and the
fallback-visibility regressions — a model without a flat booker must
say so (one ``repro.heuristics`` log warning), a ``cext`` selection
without the compiled extension must degrade to the pure-Python state
with one ``repro.kernel`` warning, and ``Schedule.state_impl`` must
record the engine that actually ran.
"""

import logging
import math

import pytest

from repro import Platform
from repro.core import TaskGraph
from repro.core.exceptions import ConfigurationError
from repro.graphs import irregular_testbed, layered_testbed, lu_graph
from repro.heuristics import available_schedulers, get_scheduler
from repro.heuristics.base import _FALLBACK_WARNED
from repro.kernel import backends, cext_backend
from repro.kernel.backends import (
    available_backends,
    current_backend_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.kernel.cext_backend import cext_available
from repro.models import RoutedOnePortModel, make_model

#: The accelerated backends under test, each compared against the
#: pure-Python reference; cext rows skip when the extension isn't built.
needs_cext = pytest.mark.skipif(
    not cext_available(), reason="cext extension not built"
)
ACCEL_BACKENDS = [
    pytest.param("numpy"),
    pytest.param("cext", marks=needs_cext),
]

TESTBEDS = {
    "lu": lambda: lu_graph(8),
    "layered": lambda: layered_testbed(5, seed=7),
    "irregular": lambda: irregular_testbed(40, seed=3),
}

#: Constructor overrides for schedulers that need arguments; ``None``
#: marks schedulers excluded from the sweep (fixed needs a per-graph
#: allocation and is exercised separately below; ils improves through
#: replay, not through SchedulerState, and multiplies runtime).
SCHEDULER_KWARGS = {
    "fixed": None,
    "ils": None,
    "ilha": {"b": 4, "single_comm_scan": True, "reschedule": True},
}

MODELS = ["one-port", "macro-dataflow", "uni-port", "no-overlap"]


def assert_identical(a, b):
    """Exact equality of two schedules, field by field."""
    assert a.placements.keys() == b.placements.keys()
    for task, placement in a.placements.items():
        other = b.placements[task]
        assert placement.proc == other.proc, f"proc drift on {task!r}"
        assert placement.start == other.start, f"start drift on {task!r}"
        assert placement.finish == other.finish, f"finish drift on {task!r}"
    assert sorted(a.comm_events) == sorted(b.comm_events)
    assert a.makespan() == b.makespan()


def run_on_backend(scheduler, graph, platform, model_name, backend):
    with use_backend(backend):
        return scheduler.run(graph, platform, make_model(platform, model_name))


@pytest.mark.parametrize("backend", ACCEL_BACKENDS)
@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("testbed", sorted(TESTBEDS))
@pytest.mark.parametrize(
    "name",
    [n for n in available_schedulers() if SCHEDULER_KWARGS.get(n, {}) is not None],
)
def test_accel_matches_python_for_every_heuristic(
    name, testbed, model_name, backend, paper_platform
):
    scheduler = get_scheduler(name, **SCHEDULER_KWARGS.get(name, {}))
    graph = TESTBEDS[testbed]()
    ref = run_on_backend(scheduler, graph, paper_platform, model_name, "python")
    acc = run_on_backend(scheduler, graph, paper_platform, model_name, backend)
    assert_identical(ref, acc)


@pytest.mark.parametrize("name", ["heft", "ilha"])
@pytest.mark.parametrize("seed", [0, 11, 23])
def test_large_irregular_fuzz(name, seed, paper_platform):
    """1000-task instances push rows past the gap-index threshold, so
    the indexed scans, mirror extension, and the dirty-watermark
    invalidation all run — and, on cext, the C engine's realloc'd rows,
    journal, and seed memo — and must not move a single float."""
    graph = irregular_testbed(1000, seed=seed)
    scheduler = get_scheduler(name)
    ref = run_on_backend(scheduler, graph, paper_platform, "one-port", "python")
    for backend in ["numpy"] + (["cext"] if cext_available() else []):
        acc = run_on_backend(scheduler, graph, paper_platform, "one-port", backend)
        assert_identical(ref, acc)


@pytest.mark.parametrize("backend", ACCEL_BACKENDS)
def test_fixed_allocation_equivalence(backend, paper_platform):
    graph = lu_graph(6)
    alloc = {t: i % paper_platform.num_processors for i, t in enumerate(graph)}
    scheduler = get_scheduler("fixed", alloc=alloc)
    ref = run_on_backend(scheduler, graph, paper_platform, "one-port", "python")
    acc = run_on_backend(scheduler, graph, paper_platform, "one-port", backend)
    assert_identical(ref, acc)


def test_state_impl_recorded_per_backend(paper_platform):
    graph = lu_graph(4)
    with use_backend("python"):
        sched = get_scheduler("heft").run(graph, paper_platform, "one-port")
    assert sched.state_impl == "flat-python"
    assert sched.summary()["state_impl"] == "flat-python"
    with use_backend("numpy"):
        sched = get_scheduler("heft").run(graph, paper_platform, "one-port")
    assert sched.state_impl == "flat-numpy"


@needs_cext
def test_state_impl_recorded_for_cext(paper_platform):
    with use_backend("cext"):
        sched = get_scheduler("heft").run(lu_graph(4), paper_platform, "one-port")
    assert sched.state_impl == "flat-cext"
    assert sched.summary()["state_impl"] == "flat-cext"


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_backends_registered(self):
        names = available_backends()
        assert "python" in names and "numpy" in names and "cext" in names

    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
        monkeypatch.setattr(backends, "_ACTIVE", None)
        assert current_backend_name() == "python"

    def test_environment_channel(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "numpy")
        monkeypatch.setattr(backends, "_ACTIVE", None)
        assert current_backend_name() == "numpy"

    def test_environment_channel_cext(self, monkeypatch):
        """cext is selectable through REPRO_BACKEND regardless of
        whether the extension is built — degradation happens at state
        construction, not at registry lookup."""
        monkeypatch.setenv(backends.BACKEND_ENV, "cext")
        monkeypatch.setattr(backends, "_ACTIVE", None)
        assert current_backend_name() == "cext"

    def test_explicit_cext_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "numpy")
        with use_backend("cext"):
            assert current_backend_name() == "cext"

    def test_unknown_environment_value_falls_back(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "fortran")
        monkeypatch.setattr(backends, "_ACTIVE", None)
        assert current_backend_name() == "python"

    def test_explicit_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "python")
        with use_backend("numpy"):
            assert current_backend_name() == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            set_backend("fortran")
        with pytest.raises(ConfigurationError):
            get_backend("fortran")

    def test_use_backend_restores(self):
        before = current_backend_name()
        with use_backend("numpy"):
            assert current_backend_name() == "numpy"
        assert current_backend_name() == before


# ----------------------------------------------------------------------
# fallback visibility (regression: the routed model used to fall back
# to the object path silently)
# ----------------------------------------------------------------------
class TestFallbackVisibility:
    def _routed_run(self):
        inf = math.inf
        line = Platform(
            [1.0, 1.0, 1.0],
            [[0.0, 1.0, inf], [1.0, 0.0, 1.0], [inf, 1.0, 0.0]],
        )
        graph = TaskGraph.from_specs(
            [("u", 2.0), ("v", 3.0), ("w", 1.0)],
            [("u", "v", 4.0), ("v", "w", 2.0)],
        )
        alloc = {"u": 0, "v": 2, "w": 0}
        return get_scheduler("fixed", alloc=alloc), graph, line

    def test_object_fallback_warns_once_and_is_recorded(self, caplog):
        scheduler, graph, line = self._routed_run()
        _FALLBACK_WARNED.discard("routed")
        with caplog.at_level(logging.WARNING, logger="repro.heuristics"):
            sched = scheduler.run(graph, line, RoutedOnePortModel(line))
            again = scheduler.run(graph, line, RoutedOnePortModel(line))
        fallback = [r for r in caplog.records if "no flat booker" in r.getMessage()]
        assert len(fallback) == 1, "expected exactly one fallback warning"
        assert fallback[0].levelno == logging.WARNING
        assert fallback[0].name == "repro.heuristics"
        assert sched.state_impl == "object"
        assert again.state_impl == "object"

    def test_numpy_backend_does_not_apply_to_object_path(self, caplog):
        """Backend selection is a flat-path concern: the routed model
        still runs (and says so) on the object path under numpy."""
        scheduler, graph, line = self._routed_run()
        _FALLBACK_WARNED.discard("routed")
        with use_backend("numpy"):
            with caplog.at_level(logging.WARNING, logger="repro.heuristics"):
                sched = scheduler.run(graph, line, RoutedOnePortModel(line))
        assert sched.state_impl == "object"
        assert any("no flat booker" in r.getMessage() for r in caplog.records)

    def test_flat_models_do_not_warn(self, paper_platform, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.heuristics"):
            get_scheduler("heft").run(lu_graph(4), paper_platform, "one-port")
        assert not [r for r in caplog.records if "no flat booker" in r.getMessage()]


# ----------------------------------------------------------------------
# graceful degradation without a compiler: simulate the extension being
# absent (the state every user without a C toolchain is in)
# ----------------------------------------------------------------------
class TestCextGracefulDegradation:
    @pytest.fixture()
    def no_extension(self, monkeypatch):
        monkeypatch.setattr(cext_backend, "_cext", None)
        monkeypatch.setattr(
            cext_backend, "_IMPORT_ERROR",
            "No module named 'repro.kernel._cext'",
        )
        monkeypatch.setattr(cext_backend, "_WARNED", False)

    def test_availability_probes(self, no_extension):
        assert not cext_backend.cext_available()
        assert "repro.kernel._cext" in cext_backend.cext_import_error()
        assert cext_backend.cext_build_info() is None

    def test_backend_still_registered(self, no_extension):
        assert "cext" in available_backends()
        assert get_backend("cext").state_class() is None

    def test_falls_back_to_python_state_with_one_warning(
        self, no_extension, paper_platform, caplog
    ):
        graph = lu_graph(6)
        with caplog.at_level(logging.WARNING, logger="repro.kernel"):
            with use_backend("cext"):
                sched = get_scheduler("heft").run(graph, paper_platform, "one-port")
                again = get_scheduler("heft").run(graph, paper_platform, "one-port")
        # ran, on the pure-Python state, and recorded what actually ran
        assert sched.state_impl == "flat-python"
        assert again.state_impl == "flat-python"
        warnings = [
            r for r in caplog.records
            if "compiled extension is not available" in r.getMessage()
        ]
        assert len(warnings) == 1, "expected exactly one fallback warning"
        assert warnings[0].name == "repro.kernel"
        assert "build_ext" in warnings[0].getMessage()

    def test_fallback_schedule_matches_python(self, no_extension, paper_platform):
        graph = irregular_testbed(40, seed=3)
        scheduler = get_scheduler("ilha", b=4)
        ref = run_on_backend(scheduler, graph, paper_platform, "one-port", "python")
        fb = run_on_backend(scheduler, graph, paper_platform, "one-port", "cext")
        assert_identical(ref, fb)
