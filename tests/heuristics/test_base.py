"""Unit tests for the shared scheduler machinery (state, queue, registry).

``state_cls`` parametrizes the behavioral tests over both
implementations of the ``SchedulerState`` contract: the flat builder
path (the default) and the retained object reference path.
"""

import pytest

from repro.core import ConfigurationError, Platform, SchedulingError, TaskGraph
from repro.heuristics import available_schedulers, get_scheduler, make_model
from repro.heuristics.base import ReadyQueue, SchedulerState
from repro.heuristics.state_object import ObjectSchedulerState
from repro.models import MacroDataflowModel, OnePortModel


@pytest.fixture
def platform():
    return Platform.homogeneous(2, cycle_time=1.0, link=1.0)


@pytest.fixture(params=["flat", "object"])
def state_cls(request):
    return SchedulerState if request.param == "flat" else ObjectSchedulerState


@pytest.fixture
def vee():
    g = TaskGraph()
    g.add_task("a", 1.0)
    g.add_task("b", 2.0)
    g.add_task("c", 1.0)
    g.add_dependency("a", "c", 3.0)
    g.add_dependency("b", "c", 1.0)
    return g


class TestMakeModel:
    def test_by_name(self, platform):
        assert isinstance(make_model(platform, "one-port"), OnePortModel)
        assert isinstance(make_model(platform, "macro-dataflow"), MacroDataflowModel)

    def test_passthrough(self, platform):
        model = OnePortModel(platform)
        assert make_model(platform, model) is model

    def test_unknown_rejected(self, platform):
        with pytest.raises(ConfigurationError):
            make_model(platform, "telepathy")


class TestSchedulerState:
    def test_dispatch_picks_flat_path(self, vee, platform):
        from repro.heuristics import force_object_state
        from repro.kernel.backends import current_backend

        # the flat class the active kernel backend asks for (None means
        # the default pure-Python SchedulerState), so the assertion
        # holds under REPRO_BACKEND=numpy too
        expected = current_backend().state_class() or SchedulerState
        state = SchedulerState(vee, platform, OnePortModel(platform))
        assert type(state) is expected
        with force_object_state():
            forced = SchedulerState(vee, platform, OnePortModel(platform))
        assert type(forced) is ObjectSchedulerState

    def test_routed_model_falls_back_to_object_path(self, vee, platform):
        from repro.models import RoutedOnePortModel

        state = SchedulerState(vee, platform, RoutedOnePortModel(platform))
        assert type(state) is ObjectSchedulerState

    def test_evaluate_does_not_mutate(self, vee, platform, state_cls):
        state = state_cls(vee, platform, OnePortModel(platform))
        state.schedule_on("a", 0)
        state.schedule_on("b", 1)
        before = len(state.schedule.comm_events)
        c0 = state.evaluate("c", 0)
        c1 = state.evaluate("c", 1)
        assert len(state.schedule.comm_events) == before
        # the rejected trials left no trace: committing either candidate
        # still produces its evaluated times
        state.commit(c0)
        assert state.schedule.finish_of("c") == c0.finish

    def test_object_trial_leaves_ports_untouched(self, vee, platform):
        state = ObjectSchedulerState(vee, platform, OnePortModel(platform))
        state.schedule_on("a", 0)
        state.schedule_on("b", 1)
        state.evaluate("c", 0)
        state.evaluate("c", 1)
        assert state.comm.ports.send[1].is_empty()

    def test_commit_books_everything(self, vee, platform, state_cls):
        state = state_cls(vee, platform, OnePortModel(platform))
        state.schedule_on("a", 0)
        state.schedule_on("b", 1)
        cand = state.evaluate("c", 0)
        state.commit(cand)
        # b -> c message booked from P1
        assert any(e.src_proc == 1 for e in state.schedule.comm_events)
        assert state.schedule.is_complete()

    def test_parents_info_requires_scheduled_parents(self, vee, platform, state_cls):
        state = state_cls(vee, platform, OnePortModel(platform))
        with pytest.raises(SchedulingError, match="before its parent"):
            state.parents_info("c")

    def test_parents_sorted_by_finish(self, vee, platform, state_cls):
        state = state_cls(vee, platform, OnePortModel(platform))
        state.schedule_on("b", 1)  # finish 2
        state.schedule_on("a", 0)  # finish 1
        info = state.parents_info("c")
        assert [p[0] for p in info] == ["a", "b"]

    def test_parent_procs(self, vee, platform, state_cls):
        state = state_cls(vee, platform, OnePortModel(platform))
        state.schedule_on("a", 0)
        state.schedule_on("b", 1)
        assert state.parent_procs("c") == {0, 1}

    def test_best_candidate_tie_goes_to_lowest_proc(self, platform, state_cls):
        g = TaskGraph()
        g.add_task("solo", 1.0)
        state = state_cls(g, platform, OnePortModel(platform))
        best = state.best_candidate("solo")
        assert best.proc == 0

    def test_insertion_vs_append(self, platform, state_cls):
        g = TaskGraph()
        for v in ("w", "x", "y"):
            g.add_task(v, 2.0)
        state = state_cls(g, platform, OnePortModel(platform))
        state.compute[0].reserve(4.0, 8.0, "blocker")
        ins = state.evaluate("w", 0, insertion=True)
        app = state.evaluate("w", 0, insertion=False)
        assert ins.start == 0.0  # fills the [0, 4) gap
        assert app.start == 8.0

    def test_snapshot_isolated(self, vee, platform, state_cls):
        state = state_cls(vee, platform, OnePortModel(platform))
        state.schedule_on("a", 0)
        snap = state.snapshot()
        snap.schedule_on("b", 1)
        assert "b" in snap.schedule.placements
        assert "b" not in state.schedule.placements
        # resource state isolated too: the original books "b" and "c"
        # exactly as the snapshot did, proving the snapshot's bookings
        # never leaked back
        snap.schedule_on("c", 0)
        b1 = state.schedule_on("b", 1)
        c1 = state.schedule_on("c", 0)
        assert b1.finish == snap.schedule.finish_of("b")
        assert c1.finish == snap.schedule.finish_of("c")
        assert state.schedule.is_complete()

    def test_mark_restore_roundtrip(self, vee, platform, state_cls):
        state = state_cls(vee, platform, OnePortModel(platform))
        state.schedule_on("a", 0)
        reference = state_cls(vee, platform, OnePortModel(platform))
        reference.schedule_on("a", 0)
        mark = state.mark()
        state.schedule_on("b", 1)
        state.schedule_on("c", 0)
        state.restore(mark)
        assert set(state.schedule.placements) == {"a"}
        assert set(state.finish) == {"a"}
        # after the rollback the state behaves exactly like one that
        # never ran the scratch chunk
        for task, proc in (("b", 1), ("c", 0)):
            got = state.schedule_on(task, proc)
            want = reference.schedule_on(task, proc)
            assert (got.start, got.finish) == (want.start, want.finish)
        assert sorted(state.schedule.comm_events) == sorted(
            reference.schedule.comm_events
        )


class TestReadyQueue:
    def test_respects_priority_and_readiness(self, vee):
        queue = ReadyQueue(vee, key=lambda v: (v,))  # alphabetical
        assert queue.pop() == "a"
        assert queue.complete("a") == []  # c still blocked by b
        assert queue.pop() == "b"
        assert queue.complete("b") == ["c"]
        assert queue.pop() == "c"
        assert not queue

    def test_pop_chunk(self):
        g = TaskGraph()
        for i in range(5):
            g.add_task(i, 1.0)
        queue = ReadyQueue(g, key=lambda v: (-v,))  # descending ids
        assert queue.pop_chunk(3) == [4, 3, 2]
        assert queue.pop_chunk(10) == [1, 0]
        assert queue.pop_chunk(1) == []

    def test_push_back(self):
        g = TaskGraph()
        g.add_task("x", 1.0)
        queue = ReadyQueue(g, key=lambda v: (0,))
        task = queue.pop()
        queue.push_back(task)
        assert queue.pop() == "x"

    def test_mixed_type_ids_no_comparison_error(self):
        g = TaskGraph()
        g.add_task(("tuple", 1), 1.0)
        g.add_task("string", 1.0)
        g.add_task(42, 1.0)
        queue = ReadyQueue(g, key=lambda v: (0,))  # all keys tie
        popped = [queue.pop() for _ in range(3)]
        assert len(popped) == 3


class TestRegistry:
    def test_known_schedulers_present(self):
        names = available_schedulers()
        for expected in ("heft", "ilha", "ilha-classic", "ilha-tuned", "cpop",
                         "gdl", "bil", "pct", "min-min", "max-min", "serial",
                         "random"):
            assert expected in names

    def test_get_scheduler_with_kwargs(self):
        ilha = get_scheduler("ilha", b=7)
        assert ilha.b == 7

    def test_unknown_scheduler(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            get_scheduler("does-not-exist")
