"""Unit tests for the baseline schedulers (CPOP, GDL, BIL, PCT, min-min,
max-min, serial, random, fixed-allocation)."""

import pytest

from repro import (
    BIL,
    CPOP,
    GDL,
    PCT,
    FixedAllocation,
    MaxMin,
    MinMin,
    Platform,
    RandomMapper,
    Serial,
    validate_schedule,
)
from repro.core import SchedulingError, TaskGraph
from repro.core.bounds import makespan_lower_bound
from repro.graphs import figure1_example, lu_graph
from repro.heuristics import best_imaginary_levels

ALL_BASELINES = [CPOP(), GDL(), BIL(), PCT(), MinMin(), MaxMin()]


class TestAllBaselines:
    @pytest.mark.parametrize("scheduler", ALL_BASELINES, ids=lambda s: s.name)
    @pytest.mark.parametrize("model", ["one-port", "macro-dataflow"])
    def test_valid_and_complete(self, scheduler, model, small_graphs, paper_platform):
        for graph in small_graphs:
            sched = scheduler.run(graph, paper_platform, model)
            validate_schedule(sched)
            assert sched.is_complete()

    @pytest.mark.parametrize("scheduler", ALL_BASELINES, ids=lambda s: s.name)
    def test_respects_lower_bound(self, scheduler, paper_platform):
        g = lu_graph(6)
        sched = scheduler.run(g, paper_platform, "one-port")
        assert sched.makespan() >= makespan_lower_bound(g, paper_platform) - 1e-9

    @pytest.mark.parametrize("scheduler", ALL_BASELINES, ids=lambda s: s.name)
    def test_deterministic(self, scheduler, paper_platform):
        g = lu_graph(5)
        a = scheduler.run(g, paper_platform, "one-port")
        b = scheduler.run(g, paper_platform, "one-port")
        assert a.makespan() == b.makespan()


class TestSerial:
    def test_speedup_is_one_on_fastest(self, paper_platform):
        g = lu_graph(5)
        sched = Serial().run(g, paper_platform, "one-port")
        validate_schedule(sched)
        assert sched.speedup() == pytest.approx(1.0)
        assert sched.num_comms() == 0

    def test_explicit_processor(self, paper_platform):
        g = lu_graph(4)
        sched = Serial(proc=9).run(g, paper_platform, "one-port")
        assert sched.processors_used() == {9}
        # t=15 processor: 2.5x slower than the fastest
        assert sched.speedup() == pytest.approx(6.0 / 15.0)


class TestRandomMapper:
    def test_seeded_reproducible(self, paper_platform):
        g = lu_graph(5)
        a = RandomMapper(seed=42).run(g, paper_platform, "one-port")
        b = RandomMapper(seed=42).run(g, paper_platform, "one-port")
        assert a.makespan() == b.makespan()

    def test_different_seeds_differ(self, paper_platform):
        g = lu_graph(6)
        spans = {
            RandomMapper(seed=s).run(g, paper_platform, "one-port").makespan()
            for s in range(5)
        }
        assert len(spans) > 1

    def test_always_valid(self, paper_platform, small_graphs):
        for seed, graph in enumerate(small_graphs):
            sched = RandomMapper(seed=seed).run(graph, paper_platform, "one-port")
            validate_schedule(sched)


class TestFixedAllocation:
    def test_reproduces_figure1_numbers(self, five_identical):
        graph = figure1_example()
        alloc = {"v0": 0, "v1": 0, "v2": 0, "v3": 1, "v4": 2, "v5": 3, "v6": 4}
        macro = FixedAllocation(alloc).run(graph, five_identical, "macro-dataflow")
        oneport = FixedAllocation(alloc).run(graph, five_identical, "one-port")
        validate_schedule(macro)
        validate_schedule(oneport)
        assert macro.makespan() == pytest.approx(3.0)
        assert oneport.makespan() == pytest.approx(6.0)

    def test_missing_task_rejected(self, five_identical):
        with pytest.raises(SchedulingError, match="missing task"):
            FixedAllocation({"v0": 0}).run(figure1_example(), five_identical)

    def test_explicit_order(self, two_identical):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        sched = FixedAllocation({"a": 0, "b": 0}, order=["b", "a"]).run(
            g, two_identical, "one-port"
        )
        assert sched.start_of("b") < sched.start_of("a")

    def test_incomplete_order_rejected(self, two_identical):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        with pytest.raises(SchedulingError, match="order must cover"):
            FixedAllocation({"a": 0, "b": 0}, order=["a"]).run(g, two_identical)


class TestCPOP:
    def test_critical_path_on_one_processor(self, paper_platform):
        g = lu_graph(6)
        sched = CPOP().run(g, paper_platform, "one-port")
        from repro.core import critical_path

        path = critical_path(g, paper_platform)
        procs = {sched.proc_of(v) for v in path}
        assert len(procs) == 1


class TestBILTable:
    def test_exit_task_bil_is_exec_time(self, paper_platform):
        g = TaskGraph()
        g.add_task("exit", 3.0)
        bil = best_imaginary_levels(g, paper_platform)
        for p in paper_platform.processors:
            assert bil[("exit", p)] == pytest.approx(3.0 * paper_platform.cycle_time(p))

    def test_bil_monotone_along_chain(self, paper_platform):
        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        bil = best_imaginary_levels(g, paper_platform)
        for p in paper_platform.processors:
            assert bil[("u", p)] > bil[("v", p)]
