"""Flat builder vs object reference: bit-identical construction.

The acceptance property of the builder layer: for every registered
heuristic x flat-capable model x testbed, running the heuristic through
the default flat ``SchedulerState`` produces *bit-identical* schedules
(placements and communication events, exact float equality — no
tolerance) to the retained object-level implementation forced by
:func:`repro.heuristics.force_object_state`.

Also here: the no-trace property (rejected candidates leave the flat
state untouched) and golden schedules pinning the flat path to the
hand-checked figures.
"""

import pytest

from repro import HEFT, ILHA, Platform
from repro.graphs import (
    fork_join_graph,
    irregular_testbed,
    layered_testbed,
    lu_graph,
    toy_graph,
)
from repro.heuristics import (
    available_schedulers,
    force_object_state,
    get_scheduler,
)
from repro.heuristics.base import SchedulerState
from repro.heuristics.state_object import ObjectSchedulerState
from repro.models import (
    MacroDataflowModel,
    NoOverlapOnePortModel,
    OnePortModel,
    UniPortModel,
    make_model,
)

TESTBEDS = {
    "lu": lambda: lu_graph(8),
    "layered": lambda: layered_testbed(5, seed=7),
    "irregular": lambda: irregular_testbed(40, seed=3),
}

#: Constructor overrides for schedulers that need arguments; ``None``
#: marks schedulers excluded from the sweep (fixed needs a per-graph
#: allocation and is exercised separately below; ils improves through
#: replay, not through SchedulerState, and multiplies runtime).
SCHEDULER_KWARGS = {
    "fixed": None,
    "ils": None,
    "ilha": {"b": 4, "single_comm_scan": True, "reschedule": True},
}

MODELS = ["one-port", "macro-dataflow", "uni-port", "no-overlap"]


def assert_identical(flat, ref):
    """Exact equality of two schedules, field by field."""
    assert flat.placements.keys() == ref.placements.keys()
    for task, placement in flat.placements.items():
        other = ref.placements[task]
        assert placement.proc == other.proc, f"proc drift on {task!r}"
        assert placement.start == other.start, f"start drift on {task!r}"
        assert placement.finish == other.finish, f"finish drift on {task!r}"
    assert sorted(flat.comm_events) == sorted(ref.comm_events)
    assert flat.makespan() == ref.makespan()


def run_both(scheduler, graph, platform, model_name):
    flat = scheduler.run(graph, platform, make_model(platform, model_name))
    with force_object_state():
        ref = scheduler.run(graph, platform, make_model(platform, model_name))
    return flat, ref


@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("testbed", sorted(TESTBEDS))
@pytest.mark.parametrize("name", [n for n in available_schedulers()
                                  if SCHEDULER_KWARGS.get(n, {}) is not None])
def test_flat_matches_object_for_every_heuristic(
    name, testbed, model_name, paper_platform
):
    graph = TESTBEDS[testbed]()
    scheduler = get_scheduler(name, **SCHEDULER_KWARGS.get(name, {}))
    flat, ref = run_both(scheduler, graph, paper_platform, model_name)
    assert_identical(flat, ref)


def test_fixed_allocation_equivalence(paper_platform):
    graph = lu_graph(6)
    alloc = {v: i % 3 for i, v in enumerate(graph.tasks())}
    scheduler = get_scheduler("fixed", alloc=alloc)
    for model_name in MODELS:
        flat, ref = run_both(scheduler, graph, paper_platform, model_name)
        assert_identical(flat, ref)


def test_heterogeneous_links_equivalence():
    """Non-uniform link matrix: per-pair durations through both paths."""
    platform = Platform(
        [1.0, 2.0, 3.0],
        [[0.0, 1.0, 2.5], [1.5, 0.0, 0.5], [2.0, 1.0, 0.0]],
    )
    graph = layered_testbed(4, seed=11)
    for model_name in MODELS:
        flat, ref = run_both(HEFT(), graph, platform, model_name)
        assert_identical(flat, ref)


def test_zero_data_edges_equivalence(paper_platform):
    """Zero-volume edges book zero-length transfers in both paths."""
    graph = toy_graph()
    for u, v in list(graph.edges())[:2]:
        graph.set_data(u, v, 0.0)
    flat, ref = run_both(HEFT(), graph, paper_platform, "one-port")
    assert_identical(flat, ref)
    assert any(e.duration == 0.0 for e in flat.comm_events)


# ----------------------------------------------------------------------
# golden schedules: the flat path reproduces the hand-checked figures
# ----------------------------------------------------------------------
class TestGolden:
    def test_toy_example_heft_one_port(self, two_identical):
        """Figure 4's toy graph under one-port HEFT (paper tie order)."""
        schedule = HEFT().run(toy_graph(), two_identical, "one-port")
        assert type(schedule).__name__ == "Schedule"
        with force_object_state():
            ref = HEFT().run(toy_graph(), two_identical, "one-port")
        assert_identical(schedule, ref)

    def test_fork_join_ilha(self, paper_platform):
        flat, ref = run_both(
            ILHA(b=4), fork_join_graph(16), paper_platform, "one-port"
        )
        assert_identical(flat, ref)


# ----------------------------------------------------------------------
# no-trace property: rejected candidates leave flat state untouched
# ----------------------------------------------------------------------
class TestNoTrace:
    def _fingerprint(self, state):
        return (
            state.builder.fingerprint(),
            dict(state.schedule.placements),
            list(state.schedule.comm_events),
            dict(state.finish),
        )

    @pytest.mark.parametrize("model_cls", [
        OnePortModel, MacroDataflowModel, UniPortModel, NoOverlapOnePortModel,
    ])
    def test_rejected_candidates_leave_no_trace(self, paper_platform, model_cls):
        graph = lu_graph(6)
        state = SchedulerState(graph, paper_platform, model_cls(paper_platform))
        # flat path in effect (whichever backend's flat state is active)
        assert not isinstance(state, ObjectSchedulerState)
        order = list(graph.topological_order())
        for task in order[: len(order) // 2]:
            state.schedule_on(task, 0)
        before = self._fingerprint(state)
        next_task = order[len(order) // 2]
        # evaluate every processor several times and commit nothing
        for _ in range(3):
            state.evaluate_all(next_task)
            state.best_candidate(next_task)
            state.evaluate(next_task, 1, insertion=False)
        assert self._fingerprint(state) == before

    def test_rejection_is_constant_time(self, paper_platform):
        """Rejecting = bumping one counter: no rows are cleared eagerly."""
        graph = lu_graph(6)
        state = SchedulerState(graph, paper_platform, OnePortModel(paper_platform))
        for task in list(graph.topological_order())[:6]:
            state.schedule_on(task, 0)
        gen_before = state.builder.gen
        state.evaluate(list(graph.topological_order())[6], 1)
        assert state.builder.gen == gen_before + 1


def test_hypothetical_parents_do_not_poison_later_evaluations(two_identical):
    """evaluate(parents=...) with made-up finish times is evaluate-only,
    and must not corrupt the booker's memoized state (regression: the
    one-port seed cache used to be keyed without the ready time)."""
    from repro.core import TaskGraph

    g = TaskGraph.from_specs([("a", 1.0), ("c", 1.0)], [("a", "c", 2.0)])
    state = SchedulerState(g, two_identical, OnePortModel(two_identical))
    state.schedule_on("a", 0)
    genuine = state.evaluate("c", 1)
    state.evaluate("c", 1, parents=[("a", 0, 100.0, 2.0)])
    again = state.evaluate("c", 1)
    assert (again.start, again.finish) == (genuine.start, genuine.finish)


def test_relocated_parent_probe_does_not_poison_seed():
    """A hypothetical probe that *relocates* a parent (same finish, other
    processor) must neither use nor pollute the real send row's seed
    (regression: the seed key used to omit the source processor)."""
    from repro.core import TaskGraph

    platform = Platform.homogeneous(3)
    g = TaskGraph.from_specs(
        [("a", 1.0), ("b", 1.0), ("d", 1.0), ("c", 1.0)],
        [("a", "b", 3.0), ("d", "c", 2.0)],
    )
    state = SchedulerState(g, platform, OnePortModel(platform))
    state.schedule_on("a", 1)
    state.schedule_on("d", 0)
    state.schedule_on("b", 2)  # books P1's send port [1, 4)
    genuine = state.evaluate("c", 2)
    # hypothetical: d on busy-sender P1 instead of idle P0
    info = state.parents_info("c")
    parent, _pproc, pfinish, data = info[0]
    state.evaluate("c", 2, parents=[(parent, 1, pfinish, data)])
    again = state.evaluate("c", 2)
    assert (again.start, again.finish) == (genuine.start, genuine.finish)


@pytest.mark.parametrize("model_cls", [
    OnePortModel, MacroDataflowModel, UniPortModel, NoOverlapOnePortModel,
])
def test_snapshot_rebinds_booker_per_model(model_cls):
    """snapshot() gives every flat booker an independent builder binding;
    the copy and the original book identically from the shared base."""
    from repro.core import TaskGraph

    platform = Platform.homogeneous(3)
    g = TaskGraph.from_specs(
        [("a", 1.0), ("b", 1.0), ("c", 1.0)],
        [("a", "c", 2.0), ("b", "c", 1.0)],
    )
    state = SchedulerState(g, platform, model_cls(platform))
    state.schedule_on("a", 0)
    state.schedule_on("b", 1)
    snap = state.snapshot()
    c_snap = snap.schedule_on("c", 2)
    c_real = state.schedule_on("c", 2)
    assert (c_snap.start, c_snap.finish) == (c_real.start, c_real.finish)
    assert snap.builder is not state.builder


def test_parent_procs_requires_scheduled_parents(paper_platform):
    from repro.core import TaskGraph
    from repro.core.exceptions import SchedulingError

    g = TaskGraph.from_specs([("a", 1.0), ("c", 1.0)], [("a", "c", 2.0)])
    for state_cls in (SchedulerState, ObjectSchedulerState):
        state = state_cls(g, paper_platform, OnePortModel(paper_platform))
        with pytest.raises((SchedulingError, KeyError)):
            state.parent_procs("c")


def test_missing_link_raises_like_object_path():
    """Partially linked platform + one-port: both paths raise
    PlatformError from the unlinked probe — pruning must not skip it."""
    import math

    from repro.core import TaskGraph
    from repro.core.exceptions import PlatformError

    inf = math.inf
    platform = Platform(
        [1.0, 1.0, 100.0],
        [[0.0, 1.0, 1.0], [1.0, 0.0, inf], [1.0, inf, 0.0]],
    )
    g = TaskGraph.from_specs([("p", 1.0), ("x", 1.0)], [("p", "x", 1.0)])
    state = SchedulerState(g, platform, OnePortModel(platform))
    state.schedule_on("p", 1)
    with pytest.raises(PlatformError):
        state.best_candidate("x")
    ref = ObjectSchedulerState(g, platform, OnePortModel(platform))
    ref.schedule_on("p", 1)
    with pytest.raises(PlatformError):
        ref.best_candidate("x")


# ----------------------------------------------------------------------
# scratch runs: mark/restore equals never-having-run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("state_cls", [SchedulerState, ObjectSchedulerState])
def test_ilha_reschedule_equivalence(paper_platform, state_cls):
    """The mark/run/restore pre-allocation produces the same schedules
    through both state implementations (ILHA's reschedule variant)."""
    graph = lu_graph(8)
    scheduler = ILHA(b=4, reschedule=True)
    flat, ref = run_both(scheduler, graph, paper_platform, "one-port")
    assert_identical(flat, ref)


# ----------------------------------------------------------------------
# 1000-task sweep (excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("seed", range(5))
def test_large_testbed_fuzz(seed, paper_platform):
    graph = irregular_testbed(1000, seed=seed)
    for scheduler in (HEFT(), ILHA(b=8)):
        for model_name in ("one-port", "macro-dataflow"):
            flat, ref = run_both(scheduler, graph, paper_platform, model_name)
            assert_identical(flat, ref)
