"""Unit tests for HEFT under both communication models."""

import pytest

from repro import HEFT, Platform, validate_schedule
from repro.core import TaskGraph
from repro.graphs import (
    figure1_example,
    fork_join_graph,
    lu_graph,
    toy_graph,
    toy_priority_key,
)


class TestBasics:
    def test_single_task_on_fastest(self):
        g = TaskGraph()
        g.add_task("only", 4.0)
        plat = Platform([10.0, 2.0, 5.0])
        sched = HEFT().run(g, plat, "one-port")
        assert sched.proc_of("only") == 1
        assert sched.makespan() == 8.0

    def test_empty_ready_queue_terminates(self):
        g = TaskGraph()
        plat = Platform.homogeneous(2)
        sched = HEFT().run(g, plat)
        assert sched.makespan() == 0.0

    def test_chain_stays_local_when_comm_expensive(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_dependency("a", "b", 100.0)
        plat = Platform.homogeneous(2, link=1.0)
        sched = HEFT().run(g, plat, "one-port")
        assert sched.proc_of("a") == sched.proc_of("b")
        assert sched.makespan() == 2.0

    def test_parallel_when_comm_free(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        plat = Platform.homogeneous(2)
        sched = HEFT().run(g, plat, "one-port")
        assert sched.proc_of("a") != sched.proc_of("b")
        assert sched.makespan() == 1.0

    @pytest.mark.parametrize("model", ["one-port", "macro-dataflow"])
    def test_valid_on_every_small_graph(self, model, small_graphs, paper_platform):
        for graph in small_graphs:
            sched = HEFT().run(graph, paper_platform, model)
            validate_schedule(sched)
            assert sched.is_complete()

    def test_deterministic(self, paper_platform):
        g = lu_graph(8)
        s1 = HEFT().run(g, paper_platform)
        s2 = HEFT().run(g, paper_platform)
        assert s1.makespan() == s2.makespan()
        assert {t: s1.proc_of(t) for t in g.tasks()} == {
            t: s2.proc_of(t) for t in g.tasks()
        }


class TestOnePortSemantics:
    def test_fork_messages_serialize(self, five_identical):
        """Figure 1's observation: under one-port the parent's messages
        queue on its send port, so HEFT keeps several children local."""
        sched = HEFT().run(figure1_example(), five_identical, "one-port")
        validate_schedule(sched)
        sends = [e for e in sched.comm_events]
        sends.sort(key=lambda e: e.start)
        for a, b in zip(sends, sends[1:]):
            if a.src_proc == b.src_proc:
                assert b.start >= a.finish - 1e-9

    def test_one_port_never_beats_macro_for_fixed_order(self, paper_platform):
        """Macro-dataflow relaxes one-port constraints, so HEFT's macro
        makespan is a lower bound for the one-port makespan on the same
        inputs (both greedy, same priorities, non-insertion)."""
        for graph in (fork_join_graph(12), lu_graph(6)):
            macro = HEFT(insertion=False).run(graph, paper_platform, "macro-dataflow")
            oneport = HEFT(insertion=False).run(graph, paper_platform, "one-port")
            assert macro.makespan() <= oneport.makespan() + 1e-9


class TestToyExample:
    def test_paper_makespan_without_insertion(self, two_identical):
        sched = HEFT(insertion=False, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        validate_schedule(sched)
        assert sched.makespan() == pytest.approx(6.0)

    def test_insertion_improves_toy(self, two_identical):
        sched = HEFT(priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        validate_schedule(sched)
        assert sched.makespan() == pytest.approx(5.0)

    def test_roots_split_across_processors(self, two_identical):
        sched = HEFT(priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        assert sched.proc_of("a0") != sched.proc_of("b0")


class TestPriorityKey:
    def test_custom_order_is_respected(self, two_identical):
        g = TaskGraph()
        for v in ("x", "y"):
            g.add_task(v, 1.0)
        # force y first: it grabs P0 (ties go to the lowest index)
        sched = HEFT(priority_key=lambda v: (0 if v == "y" else 1,)).run(
            g, two_identical, "one-port"
        )
        assert sched.proc_of("y") == 0
        assert sched.proc_of("x") == 1
