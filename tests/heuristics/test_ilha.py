"""Unit tests for ILHA: chunking, Step-1 budgets, variants, tuning."""

import pytest

from repro import HEFT, ILHA, ILHAClassic, Platform, TunedILHA, validate_schedule
from repro.core import ConfigurationError, TaskGraph
from repro.graphs import laplace_graph, lu_graph, toy_graph, toy_priority_key
from repro.heuristics.ilha import default_chunk_size


class TestConfiguration:
    def test_bad_b_rejected(self):
        with pytest.raises(ConfigurationError):
            ILHA(b=0)
        with pytest.raises(ConfigurationError):
            ILHAClassic(b=-3)

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ILHA(budget="magic")

    def test_default_chunk_size_paper_platform(self, paper_platform):
        assert default_chunk_size(paper_platform) == 38

    def test_default_chunk_size_non_integer_cycle_times(self):
        plat = Platform([1.5, 2.5])
        assert default_chunk_size(plat) == 2


class TestEquivalences:
    def test_b1_weights_budget_equals_heft(self, paper_platform):
        """With the continuous-share budget, a one-task chunk can never
        pass Step 1 (no share fits a whole task), so ILHA(B=1) IS HEFT."""
        g = lu_graph(12)
        heft = HEFT().run(g, paper_platform, "one-port")
        ilha = ILHA(b=1, budget="weights").run(g, paper_platform, "one-port")
        assert ilha.makespan() == heft.makespan()
        assert {t: ilha.proc_of(t) for t in g.tasks()} == {
            t: heft.proc_of(t) for t in g.tasks()
        }

    def test_b1_counts_budget_still_valid(self, paper_platform):
        """The counts budget lets Step 1 fire even at B=1 (one task per
        chunk may stay with its parents) — different from HEFT but valid."""
        g = lu_graph(12)
        sched = ILHA(b=1, budget="counts").run(g, paper_platform, "one-port")
        validate_schedule(sched)
        assert sched.is_complete()

    def test_valid_under_both_models(self, small_graphs, paper_platform):
        for graph in small_graphs:
            for model in ("one-port", "macro-dataflow"):
                sched = ILHA(b=5).run(graph, paper_platform, model)
                validate_schedule(sched)
                assert sched.is_complete()


class TestToyExample:
    """Section 4.4 / Figure 4: ILHA with B >= 8 on the toy graph."""

    def test_makespan_5(self, two_identical):
        sched = ILHA(b=8, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        validate_schedule(sched)
        assert sched.makespan() == pytest.approx(5.0)

    def test_only_shared_children_communicate(self, two_identical):
        sched = ILHA(b=8, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        assert sched.num_comms() == 2
        crossing = {e.dst_task for e in sched.comm_events}
        assert crossing == {"ab1", "ab2"}

    def test_private_children_stay_home(self, two_identical):
        sched = ILHA(b=8, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        for c in ("a1", "a2", "a3"):
            assert sched.proc_of(c) == sched.proc_of("a0")
        for c in ("b1", "b2", "b3"):
            assert sched.proc_of(c) == sched.proc_of("b0")

    def test_fewer_comms_than_heft(self, two_identical):
        heft = HEFT(priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        ilha = ILHA(b=8, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        assert ilha.num_comms() < heft.num_comms()
        assert ilha.makespan() <= heft.makespan()


class TestStepOne:
    def test_zero_comm_task_respects_budget(self):
        """With a tiny weight budget, Step 1 must refuse co-location."""
        g = TaskGraph()
        g.add_task("root", 1.0)
        for i in range(4):
            g.add_task(f"c{i}", 1.0)
            g.add_dependency("root", f"c{i}", 0.01)  # cheap comms
        plat = Platform.homogeneous(4)
        # counts budget for a 4-chunk on 4 procs is [1,1,1,1]: only one
        # child may stay with the root; the rest spread out.
        sched = ILHA(b=4).run(g, plat, "one-port")
        validate_schedule(sched)
        root_proc = sched.proc_of("root")
        local = [i for i in range(4) if sched.proc_of(f"c{i}") == root_proc]
        assert len(local) <= 2  # 1 from step 1 + possibly 1 from step 2

    def test_weights_budget_blocks_large_tasks(self, paper_platform):
        """Under the literal c_i*W rule no single equal-weight task fits
        a share when B=4, so ILHA degenerates to chunked HEFT."""
        g = lu_graph(10)
        counts = ILHA(b=4, budget="counts").run(g, paper_platform)
        weights = ILHA(b=4, budget="weights").run(g, paper_platform)
        validate_schedule(counts)
        validate_schedule(weights)
        # both valid; they generally differ in placements
        assert counts.is_complete() and weights.is_complete()


class TestVariants:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"single_comm_scan": True},
            {"reschedule": True},
            {"single_comm_scan": True, "reschedule": True},
            {"respect_shares_step2": True},
            {"budget": "weights"},
            {"insertion": False},
        ],
    )
    def test_variants_produce_valid_schedules(self, kwargs, paper_platform):
        for graph in (lu_graph(8), laplace_graph(5), toy_graph()):
            sched = ILHA(b=6, **kwargs).run(graph, paper_platform, "one-port")
            validate_schedule(sched)
            assert sched.is_complete()

    def test_single_comm_scan_reduces_stencil_comms(self, paper_platform):
        from repro.graphs import stencil_graph

        g = stencil_graph(10)
        plain = ILHA(b=38).run(g, paper_platform)
        scanned = ILHA(b=38, single_comm_scan=True).run(g, paper_platform)
        assert scanned.num_comms() <= plain.num_comms()

    def test_reschedule_keeps_allocation(self, paper_platform):
        """The reschedule pass re-times but must keep a valid schedule."""
        g = laplace_graph(6)
        sched = ILHA(b=10, reschedule=True).run(g, paper_platform)
        validate_schedule(sched)
        assert sched.is_complete()


class TestTunedILHA:
    def test_beats_or_matches_single_b(self, paper_platform):
        g = laplace_graph(8)
        tuned = TunedILHA(b_values=(4, 10, 38), try_variants=False).run(
            g, paper_platform
        )
        for b in (4, 10, 38):
            single = ILHA(b=b).run(g, paper_platform)
            assert tuned.makespan() <= single.makespan() + 1e-9

    def test_label_records_choice(self, paper_platform):
        tuned = TunedILHA(b_values=(5,), try_variants=False).run(
            lu_graph(6), paper_platform
        )
        assert tuned.heuristic == "ilha-tuned(B=5)"

    def test_valid(self, paper_platform):
        sched = TunedILHA(b_values=(4, 38)).run(lu_graph(8), paper_platform)
        validate_schedule(sched)


class TestILHAClassic:
    def test_valid_macro(self, paper_platform, small_graphs):
        for graph in small_graphs:
            sched = ILHAClassic(b=10).run(graph, paper_platform, "macro-dataflow")
            validate_schedule(sched)
            assert sched.is_complete()

    def test_valid_one_port_too(self, paper_platform):
        sched = ILHAClassic(b=10).run(lu_graph(6), paper_platform, "one-port")
        validate_schedule(sched)

    def test_counts_respected_per_chunk(self):
        """With B = p identical processors each chunk spreads one task
        per processor (optimal distribution of B equal tasks)."""
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 1.0)
        plat = Platform.homogeneous(4)
        sched = ILHAClassic(b=4).run(g, plat, "macro-dataflow")
        assert {sched.proc_of(i) for i in range(4)} == {0, 1, 2, 3}
