"""Cross-model and cross-heuristic integration checks."""

import pytest

from repro import HEFT, ILHA, FixedAllocation, Platform, validate_schedule
from repro.core import ValidationError, makespan_lower_bound, validate_schedule as vs
from repro.graphs import layered_random, lu_graph
from repro.heuristics import available_schedulers, get_scheduler


class TestFixedAllocationRelaxation:
    """For a fixed allocation + order + non-insertion slots, removing the
    one-port constraints (macro model) can only shrink the makespan —
    an exact dominance the trial engine must preserve."""

    @pytest.mark.parametrize("seed", range(5))
    def test_macro_dominates_one_port(self, seed, paper_platform):
        g = layered_random(5, 5, density=0.5, seed=seed)
        alloc = {
            v: hash((seed, i)) % paper_platform.num_processors
            for i, v in enumerate(g.tasks())
        }
        order = list(g.topological_order())
        macro = FixedAllocation(alloc, order=order, insertion=False).run(
            g, paper_platform, "macro-dataflow"
        )
        oneport = FixedAllocation(alloc, order=order, insertion=False).run(
            g, paper_platform, "one-port"
        )
        validate_schedule(macro)
        validate_schedule(oneport)
        assert macro.makespan() <= oneport.makespan() + 1e-9


class TestMacroSchedulesViolateOnePort:
    """The Figure 1 lesson: macro-dataflow schedules are generally
    *invalid* under the one-port rules."""

    def test_fork_macro_schedule_fails_one_port_check(self, five_identical):
        from repro.graphs import uniform_fork

        g = uniform_fork(6)
        macro = HEFT().run(g, five_identical, "macro-dataflow")
        validate_schedule(macro)  # fine under its own model
        if len({e.start for e in macro.comm_events}) < macro.num_comms():
            with pytest.raises(ValidationError):
                vs(macro, model="one-port")


class TestEveryRegisteredScheduler:
    """The registry is the public entry point: every scheduler must
    produce a valid, complete, lower-bound-respecting schedule."""

    @pytest.mark.parametrize("name", [n for n in available_schedulers() if n != "fixed"])
    def test_schedules_lu_validly(self, name, paper_platform):
        scheduler = get_scheduler(name)
        g = lu_graph(6)
        sched = scheduler.run(g, paper_platform, "one-port")
        validate_schedule(sched)
        assert sched.is_complete()
        assert sched.makespan() >= makespan_lower_bound(g, paper_platform) - 1e-9

    def test_heuristics_beat_random_on_average(self, paper_platform):
        from repro.heuristics import RandomMapper

        g = lu_graph(10)
        random_spans = [
            RandomMapper(seed=s).run(g, paper_platform, "one-port").makespan()
            for s in range(5)
        ]
        heft = HEFT().run(g, paper_platform, "one-port").makespan()
        ilha = ILHA(b=4).run(g, paper_platform, "one-port").makespan()
        avg_random = sum(random_spans) / len(random_spans)
        assert heft < avg_random
        assert ilha < avg_random


class TestHeterogeneousSpeeds:
    def test_fast_processor_preferred_for_serial_chain(self):
        from repro.core import TaskGraph

        g = TaskGraph()
        prev = None
        for i in range(5):
            g.add_task(i, 1.0)
            if prev is not None:
                g.add_dependency(prev, i, 10.0)
            prev = i
        plat = Platform([1.0, 5.0, 5.0])
        sched = HEFT().run(g, plat, "one-port")
        # chain with heavy comms: everything on the fast processor
        assert sched.processors_used() == {0}
        assert sched.makespan() == pytest.approx(5.0)

    def test_speed_ratio_respected(self):
        from repro.core import TaskGraph

        g = TaskGraph()
        g.add_task("t", 7.0)
        plat = Platform([3.0, 2.0])
        sched = HEFT().run(g, plat, "one-port")
        assert sched.proc_of("t") == 1
        assert sched.makespan() == pytest.approx(14.0)
