"""Golden regression tests: pinned one-port HEFT/ILHA schedules.

These pin the *exact* makespans, message counts, and placements of two
small, fully hand-checkable scenarios — the paper's Figure 3/4 toy
example and a 4-task FORK-JOIN — so any refactor of the EFT hot path
(timeline search, port booking, tie-breaking, chunk logic) that shifts a
schedule fails here with a concrete, interpretable diff instead of
silently changing every figure.

The FORK-JOIN timeline is derived by hand in the comments below.  For
the toy example, note the paper's Figure 4 reports makespan 6 for *its*
HEFT variant; this repository's insertion-based one-port HEFT reaches 5
with 4 messages (see EXPERIMENTS.md / ``tests/heuristics/test_ilha.py``)
— the value pinned here is the reproduction's, and ILHA's advantage
shows in the message count (2 vs 4), as Section 4.4 intends.
"""

import pytest

from repro import HEFT, ILHA, Platform, validate_schedule
from repro.graphs import fork_join_graph, toy_graph, toy_priority_key


@pytest.fixture
def two_unit() -> Platform:
    return Platform.homogeneous(2, cycle_time=1.0, link=1.0)


class TestToyGolden:
    """Figure 3 graph, two unit processors, paper child order."""

    def test_heft_golden(self, two_unit):
        s = HEFT(priority_key=toy_priority_key).run(toy_graph(), two_unit, "one-port")
        validate_schedule(s)
        assert s.makespan() == 5.0
        assert s.num_comms() == 4
        golden = {
            "a0": (0, 0.0, 1.0),
            "b0": (1, 0.0, 1.0),
            "a1": (0, 1.0, 2.0),
            "b3": (1, 1.0, 2.0),
            "a2": (0, 2.0, 3.0),
            "a3": (1, 2.0, 3.0),
            "ab1": (0, 3.0, 4.0),
            "ab2": (1, 3.0, 4.0),
            "b2": (0, 4.0, 5.0),
            "b1": (1, 4.0, 5.0),
        }
        for task, (proc, start, finish) in golden.items():
            assert s.proc_of(task) == proc, task
            assert (s.start_of(task), s.finish_of(task)) == (start, finish), task

    def test_ilha_golden(self, two_unit):
        """ILHA Step 1 keeps each fork's private children home: only the
        two shared children ever cross, makespan 5 with 2 messages."""
        s = ILHA(b=8, priority_key=toy_priority_key).run(
            toy_graph(), two_unit, "one-port"
        )
        validate_schedule(s)
        assert s.makespan() == 5.0
        assert s.num_comms() == 2
        golden = {
            "a0": (0, 0.0, 1.0),
            "b0": (1, 0.0, 1.0),
            "a1": (0, 1.0, 2.0),
            "a2": (0, 2.0, 3.0),
            "a3": (0, 3.0, 4.0),
            "b3": (1, 1.0, 2.0),
            "b2": (1, 2.0, 3.0),
            "b1": (1, 3.0, 4.0),
            "ab1": (0, 4.0, 5.0),
            "ab2": (1, 4.0, 5.0),
        }
        for task, (proc, start, finish) in golden.items():
            assert s.proc_of(task) == proc, task
            assert (s.start_of(task), s.finish_of(task)) == (start, finish), task
        assert {e.dst_task for e in s.comm_events} == {"ab1", "ab2"}


class TestForkJoinGolden:
    """FORK-JOIN(4), unit weights, c = 1, two unit processors.

    Hand derivation (HEFT, bottom levels source=5 > m_i=3 > sink=1,
    ties by insertion order):

    * source -> P0 [0,1).
    * m0: P0 finishes at 2 vs P1 msg [1,2) + exec [2,3) -> P0 [1,2).
    * m1: P0 finish 3 ties P1's msg-then-exec finish 3 -> P0 [2,3).
    * m2: P0 finish 4 loses to P1: msg [1,2), exec [2,3) -> P1 [2,3).
    * m3: P1's next send window is [2,3), arrival 3, finish 4 — ties
      P0's finish 4 -> P0 [3,4).
    * sink on P0: needs m2's data, P1 send port free at 3 -> msg [3,4),
      est max(2,3,4,4) = 4 -> P0 [4,5).  On P1 the three P0-resident
      parents serialize on P0's send port ([2,3),[3,4),[4,5)) -> est 5.
      P0 wins: makespan 5, exactly 2 messages (source->m2, m2->sink).
    """

    def test_heft_golden(self, two_unit):
        g = fork_join_graph(4, comm_ratio=1.0)
        s = HEFT().run(g, two_unit, "one-port")
        validate_schedule(s)
        assert s.makespan() == 5.0
        assert s.speedup() == pytest.approx(1.2)  # 6 units of work / 5
        assert s.num_comms() == 2
        golden = {
            "source": (0, 0.0, 1.0),
            "m0": (0, 1.0, 2.0),
            "m1": (0, 2.0, 3.0),
            "m2": (1, 2.0, 3.0),
            "m3": (0, 3.0, 4.0),
            "sink": (0, 4.0, 5.0),
        }
        for task, (proc, start, finish) in golden.items():
            assert s.proc_of(task) == proc, task
            assert (s.start_of(task), s.finish_of(task)) == (start, finish), task
        windows = sorted((e.src_task, e.start, e.finish) for e in s.comm_events)
        assert windows == [("m2", 3.0, 4.0), ("source", 1.0, 2.0)]

    def test_ilha_matches_heft_here(self, two_unit):
        """With B=8 >= the task count, ILHA degenerates to the same
        schedule on this graph — pinned so chunk-logic refactors that
        accidentally diverge on trivial instances get caught."""
        g = fork_join_graph(4, comm_ratio=1.0)
        s = ILHA(b=8).run(g, two_unit, "one-port")
        validate_schedule(s)
        assert s.makespan() == 5.0
        assert s.num_comms() == 2
        assert s.proc_of("m2") == 1
        assert (s.start_of("sink"), s.finish_of("sink")) == (4.0, 5.0)

    def test_paper_platform_forkjoin_golden(self):
        """FORK-JOIN(10) on the paper platform, c = 10.

        Sequential on the fastest processor would be 12 x 6 = 72; both
        heuristics ship work to exactly one other cycle-time-6 processor
        (each message costs 10 while local execution costs 6, so wider
        spreading never pays) and reach the pinned makespan 58 with 6
        messages — speedup 72/58 ~ 1.24, under the Section 5.3 analytic
        bound of 1.6."""
        plat = Platform.from_groups([(5, 6), (3, 10), (2, 15)])
        g = fork_join_graph(10)  # paper comm ratio 10
        for sched in (HEFT().run(g, plat, "one-port"), ILHA(b=38).run(g, plat, "one-port")):
            validate_schedule(sched)
            assert sched.makespan() == 58.0
            assert sched.num_comms() == 6
            assert {sched.proc_of(t) for t in g.tasks()} == {0, 1}
            assert sched.speedup() == pytest.approx(72.0 / 58.0)
