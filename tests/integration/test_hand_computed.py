"""Hand-computed scheduling scenarios: exact expected timelines.

Each test pins the full timing of a small scenario worked out by hand
against the one-port rules, so a regression anywhere in the EFT engine,
port booking, or tie-breaking changes a concrete number and fails here
with an interpretable diff.
"""

import pytest

from repro import HEFT, Platform, validate_schedule
from repro.core import TaskGraph


class TestTwoProcessorChainWithComm:
    """u(w=2) -> v(w=2), data 3, two unit processors, unit links.

    Local: u [0,2), v [2,4) -> makespan 4.
    Split: u [0,2), message [2,5), v [5,7) -> makespan 7.
    HEFT must keep the chain local.
    """

    def test_exact_timeline(self):
        g = TaskGraph()
        g.add_task("u", 2.0)
        g.add_task("v", 2.0)
        g.add_dependency("u", "v", 3.0)
        plat = Platform.homogeneous(2)
        s = HEFT().run(g, plat, "one-port")
        validate_schedule(s)
        assert s.proc_of("u") == s.proc_of("v") == 0
        assert (s.start_of("u"), s.finish_of("u")) == (0.0, 2.0)
        assert (s.start_of("v"), s.finish_of("v")) == (2.0, 4.0)
        assert s.num_comms() == 0


class TestFanOutTimes:
    """Root (w=1) with 3 children (w=1), data 1, 2 unit processors.

    HEFT order: root, then children (all bottom level 3, insertion order).
    root -> P0 [0,1).
    c0: P0 finish 2 vs P1: msg [1,2) exec [2,3) -> P0 [1,2).
    c1: P0 finish 3 vs P1: msg [1,2) exec [2,3) -> tie 3 ... P1 wins? No:
        candidates (finish, start, proc): P0 (3,2,0) vs P1 (3,2,1) -> P0.
    c2: P0 finish 4 vs P1: msg [1,2) exec [2,3) -> P1 at 3 < 4.
    """

    def test_exact_timeline(self):
        g = TaskGraph()
        g.add_task("root", 1.0)
        for i in range(3):
            g.add_task(f"c{i}", 1.0)
            g.add_dependency("root", f"c{i}", 1.0)
        plat = Platform.homogeneous(2)
        s = HEFT().run(g, plat, "one-port")
        validate_schedule(s)
        assert s.proc_of("root") == 0
        assert s.proc_of("c0") == 0
        assert s.proc_of("c1") == 0
        assert s.proc_of("c2") == 1
        assert s.start_of("c2") == 2.0
        assert s.makespan() == 3.0
        events = s.comms_between(("root", "c2"))
        assert [(e.start, e.finish) for e in events] == [(1.0, 2.0)]


class TestPortSerializationTiming:
    """Two senders into one receiver: exact serialized receive windows.

    a (P0, w=1) and b (P1, w=1) both feed c; data(a,c)=2, data(b,c)=2,
    3 unit processors.  If c lands on P2: messages must serialize on
    P2's receive port: first [1,3), second [3,5), c at 5.
    On P0: a local, b's message [1,3), c at max(1,3)=3, finish 4 — so
    HEFT puts c on P0 (finish 4 < 6 on P2, 4 on P1 tie -> P0).
    """

    def test_exact_timeline(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_task("c", 1.0)
        g.add_dependency("a", "c", 2.0)
        g.add_dependency("b", "c", 2.0)
        plat = Platform.homogeneous(3)
        s = HEFT().run(g, plat, "one-port")
        validate_schedule(s)
        assert {s.proc_of("a"), s.proc_of("b")} == {0, 1}
        assert s.proc_of("c") == 0
        assert s.finish_of("c") == 4.0
        # exactly one message (b -> c), in [1, 3)
        assert s.num_comms() == 1
        e = s.comm_events[0]
        assert (e.start, e.finish) == (1.0, 3.0)


class TestHeterogeneousExactTimes:
    """w=6 task on cycle times (2, 3): P0 takes 12, P1 takes 18.

    Follow-up w=1 task with data 6 on unit link: stay on P0
    (12 + 2 = 14) vs move (12 + 6 + 3 = 21).
    """

    def test_exact_timeline(self):
        g = TaskGraph()
        g.add_task("big", 6.0)
        g.add_task("next", 1.0)
        g.add_dependency("big", "next", 6.0)
        plat = Platform([2.0, 3.0], link=1.0)
        s = HEFT().run(g, plat, "one-port")
        validate_schedule(s)
        assert s.proc_of("big") == 0
        assert s.finish_of("big") == 12.0
        assert s.proc_of("next") == 0
        assert s.finish_of("next") == 14.0


class TestInsertionExactGapFill:
    """Insertion scheduling fills an exact gap the appender skips.

    P0 runs x [0,4) then z [10,14) (z delayed by a message); y (w=3,
    independent) fits the [4,10) gap exactly under insertion.
    """

    def test_gap_is_used(self):
        g = TaskGraph()
        g.add_task("x", 4.0)
        g.add_task("xx", 4.0)  # keeps P1 busy so y prefers P0's gap
        g.add_task("y", 3.0)
        plat = Platform.homogeneous(2)
        from repro.heuristics.base import SchedulerState
        from repro.models import OnePortModel

        state = SchedulerState(g, plat, OnePortModel(plat))
        state.schedule_on("x", 0)
        state.schedule_on("xx", 1)
        state.compute[0].reserve(10.0, 14.0, "z-placeholder")
        cand_ins = state.evaluate("y", 0, insertion=True)
        cand_app = state.evaluate("y", 0, insertion=False)
        assert (cand_ins.start, cand_ins.finish) == (4.0, 7.0)
        assert (cand_app.start, cand_app.finish) == (14.0, 17.0)


class TestBidirectionalOverlapTiming:
    """P0 sends to P1 while receiving from P1 — both in [1, 3)."""

    def test_exact_timeline(self):
        g = TaskGraph()
        g.add_task("a", 1.0)  # on P0
        g.add_task("b", 1.0)  # on P1
        g.add_task("c", 1.0)  # on P1, needs a's data
        g.add_task("d", 1.0)  # on P0, needs b's data
        g.add_dependency("a", "c", 2.0)
        g.add_dependency("b", "d", 2.0)
        plat = Platform.homogeneous(2)
        from repro import FixedAllocation

        s = FixedAllocation({"a": 0, "b": 1, "c": 1, "d": 0}).run(
            g, plat, "one-port"
        )
        validate_schedule(s)
        windows = sorted((e.start, e.finish) for e in s.comm_events)
        assert windows == [(1.0, 3.0), (1.0, 3.0)]  # fully overlapped
        assert s.makespan() == 4.0
