"""Integration tests pinning the paper's concrete claims.

Each test reproduces a number or qualitative statement from the paper
text and fails if the library stops reproducing it.  These are the
headline results; EXPERIMENTS.md documents the full figure sweeps.
"""

import pytest

from repro import (
    HEFT,
    ILHA,
    FixedAllocation,
    Platform,
    Serial,
    validate_schedule,
)
from repro.complexity import optimal_fork_makespan
from repro.experiments import paper_platform
from repro.graphs import (
    figure1_example,
    fork_join_graph,
    fork_join_speedup_bound,
    laplace_graph,
    lu_graph,
    toy_graph,
    toy_priority_key,
)


class TestFigure1Example:
    """Section 2.3: macro = 3, same allocation one-port >= 6, optimum 5."""

    ALLOC = {"v0": 0, "v1": 0, "v2": 0, "v3": 1, "v4": 2, "v5": 3, "v6": 4}

    def test_macro_dataflow_makespan_3(self, five_identical):
        sched = FixedAllocation(self.ALLOC).run(
            figure1_example(), five_identical, "macro-dataflow"
        )
        validate_schedule(sched)
        assert sched.makespan() == pytest.approx(3.0)

    def test_same_allocation_one_port_makespan_6(self, five_identical):
        sched = FixedAllocation(self.ALLOC).run(
            figure1_example(), five_identical, "one-port"
        )
        validate_schedule(sched)
        assert sched.makespan() == pytest.approx(6.0)

    def test_one_port_optimum_is_5(self):
        optimum, local = optimal_fork_makespan(1.0, [1.0] * 6, [1.0] * 6)
        assert optimum == pytest.approx(5.0)
        # at most 4 remote children -> fits the 5-processor platform
        assert 6 - len(local) <= 4

    def test_heft_one_port_close_to_optimum(self, five_identical):
        sched = HEFT().run(figure1_example(), five_identical, "one-port")
        validate_schedule(sched)
        assert sched.makespan() <= 6.0  # never worse than the naive allocation
        assert sched.makespan() >= 5.0  # never better than the optimum


class TestToyExample:
    """Section 4.4 / Figure 4: HEFT 6 vs ILHA 5 with far fewer messages."""

    def test_heft_paper_convention_6(self, two_identical):
        sched = HEFT(insertion=False, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        assert sched.makespan() == pytest.approx(6.0)

    def test_ilha_5_with_two_messages(self, two_identical):
        sched = ILHA(b=8, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        assert sched.makespan() == pytest.approx(5.0)
        assert sched.num_comms() == 2

    def test_ilha_beats_heft_on_both_metrics(self, two_identical):
        heft = HEFT(insertion=False, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        ilha = ILHA(b=8, priority_key=toy_priority_key).run(
            toy_graph(), two_identical, "one-port"
        )
        assert ilha.makespan() < heft.makespan()
        assert ilha.num_comms() < heft.num_comms()


class TestSection52Constants:
    def test_speedup_bound_7_6(self):
        assert paper_platform().speedup_bound() == pytest.approx(7.6)

    def test_perfect_balance_38(self):
        assert paper_platform().perfect_balance_count() == 38

    def test_serial_reference(self):
        """38 unit tasks sequentially on a fastest processor: 228."""
        plat = paper_platform()
        assert plat.sequential_time(38.0) == pytest.approx(228.0)


class TestForkJoinBound:
    """Section 5.3's analytic speedup bound for FORK-JOIN: 1.6."""

    def test_bound_value(self):
        assert fork_join_speedup_bound(1.0, 6.0, 10.0) == pytest.approx(1.6)

    def test_heuristics_stay_under_bound_and_close(self):
        plat = paper_platform()
        g = fork_join_graph(300)
        for scheduler in (HEFT(), ILHA(b=38)):
            sched = scheduler.run(g, plat, "one-port")
            validate_schedule(sched)
            assert sched.speedup() <= 1.6 + 1e-6
            assert sched.speedup() >= 1.45  # the paper measures 1.53-1.58

    def test_heft_and_ilha_agree_on_fork_join(self):
        """Figure 7: 'HEFT and ILHA lead to the same scheduling'."""
        plat = paper_platform()
        g = fork_join_graph(200)
        heft = HEFT().run(g, plat, "one-port")
        ilha = ILHA(b=38).run(g, plat, "one-port")
        assert ilha.makespan() == pytest.approx(heft.makespan(), rel=0.02)


class TestQualitativeClaims:
    def test_ilha_beats_heft_on_laplace(self):
        """Figure 9's direction: ILHA(B=38) above HEFT on LAPLACE."""
        plat = paper_platform()
        g = laplace_graph(18)
        heft = HEFT().run(g, plat, "one-port")
        ilha = ILHA(b=38).run(g, plat, "one-port")
        assert ilha.speedup() > heft.speedup()

    def test_speedups_below_ceiling(self):
        plat = paper_platform()
        for g in (lu_graph(20), laplace_graph(10)):
            for scheduler in (HEFT(), ILHA(b=4)):
                sched = scheduler.run(g, plat, "one-port")
                assert sched.speedup() <= plat.speedup_bound() + 1e-9

    def test_serial_speedup_exactly_one(self):
        plat = paper_platform()
        sched = Serial().run(lu_graph(10), plat, "one-port")
        assert sched.speedup() == pytest.approx(1.0)

    def test_one_port_needs_more_time_than_macro_on_forks(self, five_identical):
        """Communication serialization can only hurt: for the fork family
        the one-port HEFT makespan is at least the macro one."""
        for n in (4, 8, 16):
            from repro.graphs import uniform_fork

            g = uniform_fork(n)
            macro = HEFT(insertion=False).run(g, five_identical, "macro-dataflow")
            oneport = HEFT(insertion=False).run(g, five_identical, "one-port")
            assert oneport.makespan() >= macro.makespan() - 1e-9
