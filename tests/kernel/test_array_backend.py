"""Array-backend primitives vs their pure-Python references, exactly.

Three oracles:

* :func:`repro.kernel.array_backend.np_row_next_fit` and
  :class:`repro.kernel.array_backend.GapRows` against the scalar
  :func:`repro.kernel.builder.row_next_fit` on seeded random booking
  sequences — including mid-row inserts (dirty-watermark
  invalidation), rollbacks, tail growth (mirror extension), and the
  debt-gated rebuilds;
* :func:`repro.kernel.array_backend.propagate_frontier` against
  :meth:`repro.kernel.timed.TimedKernel.propagate_kahn` on extracted
  decision sets;
* the tolerance audit: gap candidates are admitted with a
  magnitude-relative pad (``GAP_PAD_REL``), so at 1e9 time magnitudes
  — where the PR-3 suite showed absolute epsilons break — the index
  still returns the scalar scan's float, bit for bit.
"""

import random

import pytest

from repro.core.platform import Platform
from repro.graphs import irregular_testbed, lu_graph
from repro.heuristics import get_scheduler
from repro.kernel import TimedKernel, compile_statics
from repro.kernel.array_backend import (
    GAP_MIN_LEN,
    GAP_TAIL_MAX,
    GapRows,
    np_row_next_fit,
    propagate_frontier,
)
from repro.kernel.builder import NO_DIRTY, FlatBuilder, row_next_fit
from repro.simulate import extract_decisions


# ----------------------------------------------------------------------
# np_row_next_fit: the standalone array primitive
# ----------------------------------------------------------------------
class TestNpRowNextFit:
    def _random_row(self, rng, n, base=0.0):
        cs, ce = [], []
        t = base
        for _ in range(n):
            t += rng.uniform(0.0, 3.0)  # gap (possibly ~0)
            start = t
            t += rng.uniform(0.1, 2.0)  # busy
            cs.append(start)
            ce.append(t)
        return cs, ce

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("base", [0.0, 1e9])
    def test_matches_scalar_on_random_rows(self, seed, base):
        rng = random.Random(seed)
        cs, ce = self._random_row(rng, 400, base=base)
        for _ in range(200):
            ready = base + rng.uniform(-1.0, (ce[-1] - base) * 1.1)
            duration = rng.choice([0.0, rng.uniform(0.0, 4.0)])
            assert np_row_next_fit(cs, ce, ready, duration) == row_next_fit(
                cs, ce, ready, duration
            )

    def test_empty_and_past_the_end(self):
        assert np_row_next_fit([], [], 5.0, 2.0) == 5.0
        assert np_row_next_fit([0.0], [1.0], 5.0, 2.0) == 5.0


# ----------------------------------------------------------------------
# GapRows: the builder-attached gap index
# ----------------------------------------------------------------------
def _assert_queries_match(builder, gap, r, rng, base, rounds=60):
    cs, ce = builder.rows_s[r], builder.rows_e[r]
    horizon = (ce[-1] - base) * 1.1 if ce else 10.0
    for _ in range(rounds):
        ready = base + rng.uniform(0.0, horizon)
        duration = rng.choice([0.0, rng.uniform(0.05, 2.0), rng.uniform(2.0, 30.0)])
        assert gap.next_fit(r, ready, duration) == row_next_fit(
            cs, ce, ready, duration
        ), f"drift at ready={ready} duration={duration}"


class TestGapRowsOracle:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("base", [0.0, 1e9])
    def test_random_booking_sequence(self, seed, base):
        """Grow a row well past the index threshold with a mix of
        frontier appends and mid-row insertions, checking every query
        against the scalar scan."""
        rng = random.Random(seed)
        builder = FlatBuilder(1)
        gap = GapRows(builder)
        t = base
        for step in range(3 * GAP_MIN_LEN):
            if rng.random() < 0.8 or not builder.rows_e[0]:
                # frontier append, leaving a gap behind it
                t += rng.uniform(0.2, 2.0)
                dur = rng.uniform(0.1, 1.5)
                builder.book(0, t, t + dur)
                t += dur
            else:
                # fill some interior gap exactly where the scan says
                dur = rng.uniform(0.05, 0.6)
                ready = base + rng.uniform(0.0, (t - base) * 0.9)
                s = row_next_fit(builder.rows_s[0], builder.rows_e[0], ready, dur)
                builder.book(0, s, s + dur)
            if step % 16 == 15:
                _assert_queries_match(builder, gap, 0, rng, base, rounds=12)
        _assert_queries_match(builder, gap, 0, rng, base)

    def _gappy_row(self, n):
        """``n`` unit intervals with unit gaps: [2i, 2i+1)."""
        builder = FlatBuilder(1)
        for i in range(n):
            builder.book(0, 2.0 * i, 2.0 * i + 1.0)
        return builder

    def test_debt_gated_mirror_and_dirty_watermark(self):
        n = 3 * GAP_MIN_LEN
        builder = self._gappy_row(n)
        gap = GapRows(builder)
        # over-long requests walk the whole row scalar until the debt
        # pays for a mirror
        for _ in range(4):
            assert gap.next_fit(0, 0.0, 3.0) == row_next_fit(
                builder.rows_s[0], builder.rows_e[0], 0.0, 3.0
            )
        assert 0 in gap._rows, "expected the debt gate to build a mirror"
        assert builder.row_dirty[0] == NO_DIRTY
        # a mid-row insert moves the watermark to the insert position...
        builder.book(0, 21.2, 21.4)  # inside the gap after interval 10
        assert builder.row_dirty[0] == 11
        # ...a second, earlier one lowers it; later ones do not raise it
        builder.book(0, 9.1, 9.3)
        assert builder.row_dirty[0] == 5
        builder.book(0, 41.5, 41.6)
        assert builder.row_dirty[0] == 5
        # stale suffix: queries stay exact (trusted prefix + scalar tail)
        rng = random.Random(3)
        _assert_queries_match(builder, gap, 0, rng, 0.0)
        # enough scalar work re-arms the debt gate and re-syncs the row
        for _ in range(6):
            gap.next_fit(0, 0.0, 3.0)
        assert builder.row_dirty[0] == NO_DIRTY

    def test_appends_extend_without_invalidating(self):
        n = 2 * GAP_MIN_LEN
        builder = self._gappy_row(n)
        gap = GapRows(builder)
        for _ in range(4):
            gap.next_fit(0, 0.0, 3.0)
        assert 0 in gap._rows
        nm = gap._rows[0][0]
        # frontier appends never move the watermark; once the tail
        # outgrows GAP_TAIL_MAX a deep query grows the mirror in place
        for i in range(n, n + GAP_TAIL_MAX + 8):
            builder.book(0, 2.0 * i, 2.0 * i + 1.0)
        assert builder.row_dirty[0] == NO_DIRTY
        assert gap.next_fit(0, 0.0, 3.0) == row_next_fit(
            builder.rows_s[0], builder.rows_e[0], 0.0, 3.0
        )
        assert gap._rows[0][0] > nm, "expected the mirror to extend"
        rng = random.Random(5)
        _assert_queries_match(builder, gap, 0, rng, 0.0)

    def test_rollback_resets_watermark_to_zero(self):
        builder = self._gappy_row(2 * GAP_MIN_LEN)
        gap = GapRows(builder)
        for _ in range(4):
            gap.next_fit(0, 0.0, 3.0)
        cursor = builder.mark()
        builder.book(0, 3.2, 3.4)
        builder.rollback(cursor)
        assert builder.row_dirty[0] == 0
        rng = random.Random(9)
        _assert_queries_match(builder, gap, 0, rng, 0.0)

    def test_short_rows_bypass_the_index(self):
        builder = self._gappy_row(GAP_MIN_LEN // 2)
        gap = GapRows(builder)
        for _ in range(50):
            gap.next_fit(0, 0.0, 3.0)
        assert not gap._rows, "short rows must stay scalar"

    def test_ulp_tight_gaps_at_1e9(self):
        """Gaps that fit (or miss) the duration by ~1 ulp at 1e9
        magnitude: the padded candidate admission may cost a wasted
        verification but never changes the returned float."""
        base = 1e9
        builder = FlatBuilder(1)
        rng = random.Random(13)
        t = base
        for _ in range(3 * GAP_MIN_LEN):
            t += rng.choice([3.0, 3.0 + 1e-7, 3.0 - 1e-7])
            builder.book(0, t, t + 1.0)
            t += 1.0
        gap = GapRows(builder)
        cs, ce = builder.rows_s[0], builder.rows_e[0]
        for _ in range(300):
            ready = base + rng.uniform(0.0, t - base)
            duration = rng.choice([3.0, 3.0 + 1e-7, 3.0 - 1e-7])
            assert gap.next_fit(0, ready, duration) == row_next_fit(
                cs, ce, ready, duration
            )


# ----------------------------------------------------------------------
# frontier-batched propagation
# ----------------------------------------------------------------------
class TestPropagateFrontier:
    def _kernel(self, graph, platform, name="heft"):
        schedule = get_scheduler(name).run(graph, platform, "one-port")
        statics = compile_statics(graph, platform)
        return TimedKernel.from_decisions(statics, extract_decisions(schedule))

    @pytest.mark.parametrize(
        "graph_fn",
        [lambda: lu_graph(8), lambda: irregular_testbed(60, seed=2)],
    )
    def test_matches_kahn_exactly(self, graph_fn, paper_platform):
        graph = graph_fn()
        ka = self._kernel(graph, paper_platform)
        fr = self._kernel(graph, paper_platform)
        ms_k = ka.propagate_kahn()
        ms_f = propagate_frontier(fr)
        assert ms_f == ms_k
        assert list(fr.start) == list(ka.start)
        assert list(fr.finish) == list(ka.finish)

    def test_duration_override_and_out_arrays(self, paper_platform):
        graph = lu_graph(6)
        ka = self._kernel(graph, paper_platform)
        size = len(ka.dur)
        dur = [d * 1.5 for d in ka.dur]
        outs_k = ([0.0] * size, [0.0] * size)
        outs_f = ([0.0] * size, [0.0] * size)
        ms_k = ka.propagate_kahn(dur=dur, out_start=outs_k[0], out_finish=outs_k[1])
        ms_f = propagate_frontier(ka, dur=dur, out_start=outs_f[0], out_finish=outs_f[1])
        assert ms_f == ms_k
        assert outs_f == outs_k


# ----------------------------------------------------------------------
# tolerance regression: long chains at 1e9 magnitude under both backends
# ----------------------------------------------------------------------
class TestLongChainBackends:
    """The PR-3 regression shape (200 hops at ~1e9) scheduled under the
    numpy backend: vectorized reductions must preserve the scale-aware
    semantics — the schedules are bit-identical, and validation (which
    uses the shared ``time_tol``) passes on both."""

    def test_200_hop_chain_identical_across_backends(self):
        from repro.core import TaskGraph, validate_schedule
        from repro.kernel.backends import use_backend

        platform = Platform.homogeneous(2, cycle_time=1.0, link=1.0)
        hops, scale = 200, 1e7
        tasks = [(f"t{i}", scale) for i in range(hops + 1)]
        edges = [(f"t{i}", f"t{i + 1}", scale / 2) for i in range(hops)]
        graph = TaskGraph.from_specs(tasks, edges, name="chain-200")
        alloc = {f"t{i}": i % 2 for i in range(hops + 1)}
        results = {}
        for backend in ("python", "numpy"):
            with use_backend(backend):
                sched = get_scheduler("fixed", alloc=alloc).run(
                    graph, platform, "one-port"
                )
            validate_schedule(sched)
            results[backend] = sched
        a, b = results["python"], results["numpy"]
        assert a.makespan() == b.makespan() > 1e9
        for v in graph.tasks():
            assert a.start_of(v) == b.start_of(v)
            assert a.finish_of(v) == b.finish_of(v)
