"""Unit tests for the flat construction state (``repro.kernel.builder``).

The gap-search primitives are checked against the object-level
``Timeline`` as an oracle on randomized interval sets; the journal is
checked to restore exact pre-mark state.
"""

import random

import pytest

from repro.core.exceptions import TimelineError
from repro.core.timeline import Timeline, earliest_joint_fit
from repro.kernel.builder import FlatBuilder, layered_next_fit, row_next_fit


def random_rows(rng, count, span=100.0):
    """Disjoint sorted intervals as (starts, ends) plus a Timeline twin."""
    starts, ends = [], []
    timeline = Timeline()
    t = 0.0
    for _ in range(count):
        t += rng.uniform(0.2, 6.0)
        dur = rng.uniform(0.1, 4.0)
        starts.append(t)
        ends.append(t + dur)
        timeline.reserve(t, t + dur)
        t += dur
    return starts, ends, timeline


class TestGapSearch:
    @pytest.mark.parametrize("seed", range(10))
    def test_row_next_fit_matches_timeline(self, seed):
        rng = random.Random(seed)
        starts, ends, timeline = random_rows(rng, rng.randrange(0, 25))
        for _ in range(50):
            ready = rng.uniform(0.0, 120.0)
            duration = rng.uniform(0.0, 8.0)
            assert row_next_fit(starts, ends, ready, duration) == timeline.next_fit(
                ready, duration
            )

    def test_zero_duration_returns_ready(self):
        assert row_next_fit([1.0], [5.0], 2.0, 0.0) == 2.0

    @pytest.mark.parametrize("seed", range(10))
    def test_layered_next_fit_matches_merged_timeline(self, seed):
        """Committed + tentative layers behave like their union."""
        rng = random.Random(1000 + seed)
        cs, ce, _ = random_rows(rng, 10)
        # tentative intervals inside the committed gaps
        ts, te = [], []
        merged = Timeline()
        for s, e in zip(cs, ce):
            merged.reserve(s, e)
        for s, e in zip(cs[:-1], ce[:-1]):
            nxt = cs[cs.index(s) + 1]
            if nxt - e > 1.0:
                mid = e + (nxt - e) / 4
                ts.append(mid)
                te.append(mid + (nxt - e) / 4)
                merged.reserve(ts[-1], te[-1])
        for _ in range(50):
            ready = rng.uniform(0.0, 120.0)
            duration = rng.uniform(0.0, 5.0)
            assert layered_next_fit(cs, ce, ts, te, ready, duration) == (
                merged.next_fit(ready, duration)
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_joint_next_fit_matches_earliest_joint_fit(self, seed):
        rng = random.Random(2000 + seed)
        builder = FlatBuilder(3)
        timelines = []
        for r in range(3):
            starts, ends, timeline = random_rows(rng, rng.randrange(0, 15))
            builder.rows_s[r][:] = starts
            builder.rows_e[r][:] = ends
            timelines.append(timeline)
        for _ in range(40):
            ready = rng.uniform(0.0, 120.0)
            duration = rng.uniform(0.05, 5.0)
            assert builder.joint_next_fit((0, 1, 2), ready, duration) == (
                earliest_joint_fit(timelines, ready, duration)
            )


class TestTrials:
    def test_begin_trial_invalidates_tentative(self):
        b = FlatBuilder(1)
        b.begin_trial()
        b.book_tentative(0, 1.0, 2.0)
        assert b.next_fit_layered(0, 1.0, 1.0) == 2.0
        b.begin_trial()  # O(1) rejection
        assert b.next_fit_layered(0, 1.0, 1.0) == 1.0

    def test_tentative_does_not_touch_committed(self):
        b = FlatBuilder(1)
        b.begin_trial()
        b.book_tentative(0, 1.0, 2.0)
        assert b.committed(0) == []
        assert b.next_fit(0, 0.0, 5.0) == 0.0

    def test_zero_length_tentative_not_stored(self):
        b = FlatBuilder(1)
        b.begin_trial()
        b.book_tentative(0, 3.0, 3.0)
        ts, te = b.tent_view(0)
        assert list(ts) == []


class TestCommitted:
    def test_book_keeps_rows_sorted(self):
        b = FlatBuilder(1)
        b.book(0, 5.0, 6.0)
        b.book(0, 1.0, 2.0)
        b.book(0, 3.0, 4.0)
        assert b.committed(0) == [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]

    def test_book_rejects_overlap(self):
        b = FlatBuilder(1)
        b.book(0, 1.0, 3.0)
        with pytest.raises(TimelineError):
            b.book(0, 2.0, 4.0)
        with pytest.raises(TimelineError):
            b.book(0, 0.0, 1.5)

    def test_touching_intervals_allowed(self):
        b = FlatBuilder(1)
        b.book(0, 1.0, 2.0)
        b.book(0, 2.0, 3.0)
        assert b.committed(0) == [(1.0, 2.0), (2.0, 3.0)]

    def test_zero_length_not_stored(self):
        b = FlatBuilder(1)
        b.book(0, 2.0, 2.0)
        assert b.committed(0) == []

    def test_new_rows(self):
        b = FlatBuilder(2)
        base = b.new_rows(4)
        assert base == 2
        assert b.num_rows == 6


class TestJournal:
    def test_rollback_restores_exact_state(self):
        rng = random.Random(7)
        b = FlatBuilder(2)
        b.new_rows(2)
        for r in range(4):
            t = 0.0
            for _ in range(6):
                t += rng.uniform(0.5, 3.0)
                b.book(r, t, t + 0.4)
                t += 0.4
        before = b.fingerprint()
        cursor = b.mark()
        # interleaved mid-row inserts on several rows
        for r in range(4):
            for s in (0.05, 100.0, 50.0):
                b.book(r, s + r, s + r + 0.1)
        assert b.fingerprint() != before
        b.rollback(cursor)
        assert b.fingerprint() == before
        assert b.log is None

    def test_nested_marks_lifo(self):
        """Two nested marks sharing cursor 0: inner rollback must keep
        the outer mark's journal alive (depth, not cursor, decides)."""
        b = FlatBuilder(1)
        outer = b.mark()
        inner = b.mark()  # no bookings in between: same cursor as outer
        b.book(0, 1.0, 2.0)
        b.rollback(inner)
        assert b.log is not None  # outer mark still journaling
        b.book(0, 3.0, 4.0)
        b.rollback(outer)
        assert b.committed(0) == []
        assert b.log is None

    def test_rollback_without_mark_raises(self):
        b = FlatBuilder(1)
        with pytest.raises(TimelineError):
            b.rollback(0)

    def test_release_mark_keeps_bookings(self):
        b = FlatBuilder(1)
        cursor = b.mark()
        b.book(0, 1.0, 2.0)
        b.release_mark(cursor)
        assert b.log is None
        assert b.committed(0) == [(1.0, 2.0)]

    def test_no_journal_overhead_without_mark(self):
        b = FlatBuilder(1)
        b.book(0, 1.0, 2.0)
        assert b.log is None


class TestCopy:
    def test_copy_is_independent(self):
        b = FlatBuilder(1)
        b.new_rows(1)
        b.book(0, 1.0, 2.0)
        dup = b.copy()
        dup.book(0, 3.0, 4.0)
        b.book(1, 0.0, 1.0)
        assert b.committed(0) == [(1.0, 2.0)]
        assert dup.committed(0) == [(1.0, 2.0), (3.0, 4.0)]
        assert dup.committed(1) == []
