"""Seeded fuzz cross-check: kernel replay == object-level replay, exactly.

The acceptance property of the flat kernel: for every registered
heuristic x replayable model x testbed, replaying the extracted
decisions through the kernel produces *bit-identical* node times and
makespan to the retained object-level implementation (same ``max`` over
the same operands, same single addition per activity — no tolerance).
"""

import math

import pytest

from repro import HEFT, ILHA, Platform
from repro.graphs import irregular_testbed, layered_testbed, lu_graph
from repro.heuristics import available_schedulers, get_scheduler
from repro.models import NoOverlapOnePortModel, RoutedOnePortModel, UniPortModel
from repro.simulate import extract_decisions, replay, replay_object

TESTBEDS = {
    "lu": lambda: lu_graph(8),
    "layered": lambda: layered_testbed(5, seed=7),
    "irregular": lambda: irregular_testbed(40, seed=3),
}

#: Constructor overrides for schedulers that need arguments; ``None``
#: marks schedulers excluded from the sweep (fixed needs a per-graph
#: allocation and is exercised separately below).
SCHEDULER_KWARGS = {
    "fixed": None,
    "ils": {"budget": 60, "seed": 1},
    "ilha": {"b": 4},
}


def assert_exact_agreement(graph, platform, schedule):
    decisions = extract_decisions(schedule)
    fast = replay(graph, platform, decisions)
    ref = replay_object(graph, platform, decisions)
    for v in graph.tasks():
        assert fast.proc_of(v) == ref.proc_of(v)
        assert fast.start_of(v) == ref.start_of(v), f"start drift on {v!r}"
        assert fast.finish_of(v) == ref.finish_of(v), f"finish drift on {v!r}"
    fast_events = sorted(fast.comm_events)
    ref_events = sorted(ref.comm_events)
    assert fast_events == ref_events
    assert fast.makespan() == ref.makespan()


@pytest.mark.parametrize("testbed", sorted(TESTBEDS))
@pytest.mark.parametrize("name", [n for n in available_schedulers()
                                  if SCHEDULER_KWARGS.get(n, {}) is not None])
def test_kernel_matches_legacy_for_every_heuristic(name, testbed, paper_platform):
    graph = TESTBEDS[testbed]()
    scheduler = get_scheduler(name, **SCHEDULER_KWARGS.get(name, {}))
    schedule = scheduler.run(graph, paper_platform, "one-port")
    assert_exact_agreement(graph, paper_platform, schedule)


@pytest.mark.parametrize("testbed", sorted(TESTBEDS))
@pytest.mark.parametrize("model_cls", [NoOverlapOnePortModel, UniPortModel])
def test_kernel_matches_legacy_for_variant_models(model_cls, testbed, paper_platform):
    """Variant one-port models book different resources but their
    decision sets replay identically through both implementations."""
    graph = TESTBEDS[testbed]()
    schedule = HEFT().run(graph, paper_platform, model_cls(paper_platform))
    assert_exact_agreement(graph, paper_platform, schedule)


def test_fixed_allocation_crosscheck(paper_platform):
    graph = lu_graph(6)
    alloc = {v: i % 3 for i, v in enumerate(graph.tasks())}
    schedule = get_scheduler("fixed", alloc=alloc).run(graph, paper_platform, "one-port")
    assert_exact_agreement(graph, paper_platform, schedule)


def test_routed_multi_hop_takes_object_path(paper_platform):
    """A sparse platform forces multi-hop chains: the kernel must detect
    ineligibility and fall back, still agreeing with the reference."""
    from repro.core import TaskGraph

    inf = math.inf
    line = Platform(
        [1.0, 1.0, 1.0],
        [[0.0, 1.0, inf], [1.0, 0.0, 1.0], [inf, 1.0, 0.0]],
    )
    graph = TaskGraph.from_specs(
        [("u", 2.0), ("v", 3.0), ("w", 1.0)],
        [("u", "v", 4.0), ("v", "w", 2.0)],
    )
    alloc = {"u": 0, "v": 2, "w": 0}  # every edge must relay through P1
    schedule = get_scheduler("fixed", alloc=alloc).run(
        graph, line, RoutedOnePortModel(line)
    )
    decisions = extract_decisions(schedule)
    assert any(hop for (_, _, hop) in decisions.hops), "expected multi-hop chains"
    assert_exact_agreement(graph, line, schedule)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(5))
def test_large_testbed_fuzz(seed, paper_platform):
    """1000-task irregular testbeds, several seeds (excluded from tier-1)."""
    graph = irregular_testbed(1000, seed=seed)
    for scheduler in (HEFT(), ILHA(b=8)):
        schedule = scheduler.run(graph, paper_platform, "one-port")
        assert_exact_agreement(graph, paper_platform, schedule)
