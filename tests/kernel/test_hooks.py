"""The online-engine hooks of the flat kernel: successor enumeration,
transfer port pairs, and observed-duration re-propagation."""

import pytest

from repro.graphs import lu_graph
from repro.heuristics import HEFT
from repro.kernel import TimedKernel, compile_statics
from repro.simulate import extract_decisions


@pytest.fixture(scope="module")
def compiled():
    from repro import Platform

    platform = Platform.from_groups([(5, 6), (3, 10), (2, 15)])
    graph = lu_graph(8)
    schedule = HEFT().run(graph, platform, "one-port")
    statics = compile_statics(graph, platform)
    kern = TimedKernel.from_decisions(statics, extract_decisions(schedule))
    kern.propagate_kahn()
    return statics, kern


class TestOneShotSuccessors:
    def test_covers_every_active_node_edge_exactly(self, compiled):
        """The hook enumerates exactly the constraint edges the Kahn
        pass walks: rebuild in-degrees from it and compare."""
        statics, kern = compiled
        n = statics.num_tasks
        indeg = [0] * (n + statics.num_edges)
        for node in kern.active_nodes():
            for succ in kern.one_shot_successors(node):
                indeg[succ] += 1
        assert indeg == kern.indeg

    def test_successors_respect_transfer_activation(self, compiled):
        statics, kern = compiled
        n = statics.num_tasks
        for node in kern.active_nodes():
            for succ in kern.one_shot_successors(node):
                if succ >= n:
                    assert kern.active[succ - n], "successor is an inactive slot"

    def test_hop_procs_parallel_hop_list(self, compiled):
        statics, kern = compiled
        assert len(kern.hop_procs) == len(kern.hop_list)
        al = kern.alloc
        for e, (a, b) in zip(kern.hop_list, kern.hop_procs):
            assert a != b
            assert al[statics.esrc[e]] == a
            assert al[statics.edst[e]] == b


class TestPropagateOverrides:
    def test_dur_override_with_out_arrays_is_pure(self, compiled):
        statics, kern = compiled
        base_start = list(kern.start)
        base_finish = list(kern.finish)
        base_ms = kern.makespan
        size = len(kern.dur)
        dur = [d * 2.0 for d in kern.dur]
        out_start, out_finish = [0.0] * size, [0.0] * size
        ms = kern.propagate_kahn(dur=dur, out_start=out_start, out_finish=out_finish)
        # doubling every duration doubles every least time exactly
        n = statics.num_tasks
        for node in kern.active_nodes():
            assert out_start[node] == 2.0 * base_start[node]
            assert out_finish[node] == 2.0 * base_finish[node]
        assert ms == 2.0 * base_ms
        # the base state is untouched
        assert kern.start == base_start
        assert kern.finish == base_finish
        assert kern.makespan == base_ms

    def test_default_call_still_updates_base_state(self, compiled):
        _, kern = compiled
        ms = kern.propagate_kahn()
        assert ms == kern.makespan
