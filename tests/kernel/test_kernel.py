"""Unit tests for the flat kernel: interning, statics cache, compile/propagate."""

import pytest

from repro import HEFT, Platform
from repro.core import SchedulingError, TaskGraph
from repro.graphs import lu_graph
from repro.kernel import KernelIneligible, TimedKernel, compile_statics
from repro.simulate import extract_decisions, replay_object
from repro.simulate.replay import ReplayDecisions


class TestStatics:
    def test_interning_roundtrip(self, paper_platform):
        g = lu_graph(6)
        st = compile_statics(g, paper_platform)
        assert st.num_tasks == g.num_tasks
        assert st.num_edges == g.num_edges
        for i, v in enumerate(st.tasks):
            assert st.tindex[v] == i
            assert st.tid_index[id(v)] == i
        for e, (u, v) in enumerate(st.edges):
            assert st.eindex[(u, v)] == e
            assert st.tasks[st.esrc[e]] == u
            assert st.tasks[st.edst[e]] == v
            assert st.edata[e] == g.data(u, v)
            assert st.hop0_node[(u, v, 0)] == st.num_tasks + e

    def test_csr_matches_graph_adjacency(self, paper_platform):
        g = lu_graph(6)
        st = compile_statics(g, paper_platform)
        for i, v in enumerate(st.tasks):
            parents = sorted(st.tasks[st.esrc[e]] for e in st.pred_rows[i])
            assert parents == sorted(g.predecessors(v))
            children = sorted(st.tasks[st.edst[e]] for e in st.succ_rows[i])
            assert children == sorted(g.successors(v))
            assert st.base_indeg[i] == g.in_degree(v)
        entries = {st.tasks[i] for i in st.base_entries}
        assert entries == set(g.entry_tasks())

    def test_cost_tables_match_platform(self, paper_platform):
        g = lu_graph(5)
        st = compile_statics(g, paper_platform)
        for i, v in enumerate(st.tasks):
            for p in paper_platform.processors:
                assert st.exec_[i][p] == paper_platform.exec_time(g.weight(v), p)
        for q in paper_platform.processors:
            for r in paper_platform.processors:
                assert st.link_rows[q][r] == paper_platform.link(q, r)
        assert st.all_links_finite == paper_platform.is_fully_connected()

    def test_comm_dur_matches_platform(self, paper_platform):
        g = lu_graph(5)
        st = compile_statics(g, paper_platform)
        for e, (u, v) in enumerate(st.edges):
            assert st.comm_dur(e, 0, 1) == paper_platform.comm_time(g.data(u, v), 0, 1)
            assert st.comm_dur(e, 2, 2) == 0.0

    def test_cache_shared_and_invalidated(self, paper_platform):
        g = lu_graph(4)
        st1 = compile_statics(g, paper_platform)
        assert compile_statics(g, paper_platform) is st1
        other = Platform.homogeneous(3)
        assert compile_statics(g, other) is not st1
        assert compile_statics(g, paper_platform) is st1
        g.add_task("fresh", 1.0)  # mutation clears the cache
        st2 = compile_statics(g, paper_platform)
        assert st2 is not st1
        assert st2.num_tasks == st1.num_tasks + 1

    def test_cost_mutation_invalidates(self, paper_platform):
        g = lu_graph(4)
        st1 = compile_statics(g, paper_platform)
        some_task = st1.tasks[0]
        g.set_weight(some_task, 123.0)
        st2 = compile_statics(g, paper_platform)
        assert st2 is not st1
        assert st2.weights[0] == 123.0


class TestTimedKernel:
    def test_from_decisions_matches_object_replay(self, paper_platform):
        g = lu_graph(8)
        dec = extract_decisions(HEFT().run(g, paper_platform, "one-port"))
        st = compile_statics(g, paper_platform)
        kern = TimedKernel.from_decisions(st, dec)
        kern.propagate_kahn()
        ref = replay_object(g, paper_platform, dec)
        for i, v in enumerate(st.tasks):
            assert kern.start[i] == ref.start_of(v)
            assert kern.finish[i] == ref.finish_of(v)
        assert kern.makespan == ref.makespan()

    def test_from_point_matches_from_decisions(self, paper_platform):
        from repro.search import SearchPoint

        g = lu_graph(8)
        sched = HEFT().run(g, paper_platform, "one-port")
        point = SearchPoint.from_schedule(sched)
        st = compile_statics(g, paper_platform)
        kp = TimedKernel.from_point(st, point)
        keys = {}
        n = st.num_tasks
        pos = {v: i for i, v in enumerate(point.sequence)}
        for node in kp.active_nodes():
            if node < n:
                keys[node] = (pos[st.tasks[node]], 1, 0)
            else:
                u, v = st.edges[node - n]
                keys[node] = (pos[v], 0, pos[u])
        kp.propagate_order(sorted(kp.active_nodes(), key=keys.__getitem__))

        kd = TimedKernel.from_decisions(st, point.to_decisions(paper_platform.processors))
        kd.propagate_kahn()
        assert kp.start == kd.start
        assert kp.finish == kd.finish
        assert kp.makespan == kd.makespan

    def test_multi_hop_is_ineligible(self, paper_platform):
        g = TaskGraph.from_specs([("u", 1.0), ("v", 1.0)], [("u", "v", 2.0)])
        st = compile_statics(g, paper_platform)
        dec = ReplayDecisions(
            alloc={"u": 0, "v": 2},
            proc_order={0: ["u"], 1: [], 2: ["v"]},
            send_order={0: [("u", "v", 0)], 1: [("u", "v", 1)], 2: []},
            recv_order={0: [], 1: [("u", "v", 0)], 2: [("u", "v", 1)]},
            hops={("u", "v", 0): (0, 1), ("u", "v", 1): (1, 2)},
        )
        with pytest.raises(KernelIneligible):
            TimedKernel.from_decisions(st, dec)

    def test_missing_task_raises_like_legacy(self, paper_platform):
        g = lu_graph(4)
        dec = extract_decisions(HEFT().run(g, paper_platform, "one-port"))
        del dec.alloc[("p", 1)]
        st = compile_statics(g, paper_platform)
        with pytest.raises(SchedulingError, match="missing task"):
            TimedKernel.from_decisions(st, dec)

    def test_out_of_range_procs_rejected(self, paper_platform):
        """Negative/overflowing processor indices must raise the same
        PlatformError the object-level replay produces — not silently
        wrap through Python negative list indexing."""
        from repro.core.exceptions import PlatformError
        from repro.simulate import replay

        g = TaskGraph.from_specs([("a", 1.0), ("b", 1.0)], [("a", "b", 2.0)])
        for bad in (-1, paper_platform.num_processors):
            dec = ReplayDecisions(
                alloc={"a": 0, "b": bad},
                proc_order={0: ["a"], 1: ["b"]},
                send_order={0: [("a", "b", 0)], 1: []},
                recv_order={0: [], 1: [("a", "b", 0)]},
                hops={("a", "b", 0): (0, bad)},
            )
            with pytest.raises(PlatformError, match="out of range"):
                replay(g, paper_platform, dec)

    def test_from_point_rejects_out_of_range_alloc(self, paper_platform):
        from repro.core.exceptions import PlatformError
        from repro.search import SearchPoint

        g = TaskGraph.from_specs([("a", 1.0), ("b", 1.0)], [("a", "b", 2.0)])
        st = compile_statics(g, paper_platform)
        point = SearchPoint(g, {"a": 0, "b": -1}, ["a", "b"])
        with pytest.raises(PlatformError, match="out of range"):
            TimedKernel.from_point(st, point)

    def test_from_point_raises_on_missing_link(self):
        """An allocation across a missing link must raise, not go inf."""
        import math

        from repro.core.exceptions import PlatformError
        from repro.search import SearchPoint

        g = TaskGraph.from_specs([("u", 1.0), ("v", 1.0)], [("u", "v", 2.0)])
        inf = math.inf
        plat = Platform([1.0, 1.0], [[0.0, inf], [inf, 0.0]])
        st = compile_statics(g, plat)
        point = SearchPoint(g, {"u": 0, "v": 1}, ["u", "v"])
        with pytest.raises(PlatformError, match="no direct link"):
            TimedKernel.from_point(st, point)

    def test_intern_identity_and_equality(self, paper_platform):
        g = lu_graph(4)
        st = compile_statics(g, paper_platform)
        for i, v in enumerate(st.tasks):
            assert st.intern(v) == i            # identity hit
            if isinstance(v, tuple):
                assert st.intern(tuple(list(v))) == i  # equality fallback

    def test_cycle_detected(self):
        g = TaskGraph.from_specs([("a", 1.0), ("b", 1.0)], [("a", "b", 0.0)])
        plat = Platform.homogeneous(1)
        st = compile_statics(g, plat)
        dec = ReplayDecisions(
            alloc={"a": 0, "b": 0},
            proc_order={0: ["b", "a"]},
            send_order={0: []},
            recv_order={0: []},
        )
        kern = TimedKernel.from_decisions(st, dec)
        with pytest.raises(SchedulingError, match="cycle"):
            kern.propagate_kahn()
