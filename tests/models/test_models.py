"""Unit tests for the communication models (macro-dataflow and one-port)."""

import pytest

from repro.core import Platform, Schedule, TaskGraph
from repro.models import MacroDataflowModel, OnePortModel


@pytest.fixture
def platform():
    return Platform.homogeneous(3, cycle_time=1.0, link=2.0)


@pytest.fixture
def graph():
    g = TaskGraph()
    g.add_task("u", 1.0)
    g.add_task("v", 1.0)
    g.add_dependency("u", "v", 3.0)
    return g


class TestMacroDataflow:
    def test_local_edge_free(self, platform, graph):
        state = MacroDataflowModel(platform).new_state()
        trial = state.trial()
        assert trial.edge_arrival("u", "v", 1, 1, 5.0, 3.0) == 5.0

    def test_remote_edge_costs_data_times_link(self, platform, graph):
        trial = MacroDataflowModel(platform).new_state().trial()
        assert trial.edge_arrival("u", "v", 0, 1, 5.0, 3.0) == 5.0 + 6.0

    def test_no_contention_between_trials(self, platform):
        state = MacroDataflowModel(platform).new_state()
        t1 = state.trial()
        t2 = state.trial()
        # identical transfers at identical times: both start immediately
        assert t1.edge_arrival("u", "v", 0, 1, 0.0, 3.0) == 6.0
        assert t2.edge_arrival("u", "v", 0, 1, 0.0, 3.0) == 6.0

    def test_commit_records_events(self, platform, graph):
        state = MacroDataflowModel(platform).new_state()
        trial = state.trial()
        trial.edge_arrival("u", "v", 0, 1, 5.0, 3.0)
        sched = Schedule(graph, platform, model="macro-dataflow")
        trial.commit(sched)
        assert len(sched.comm_events) == 1
        assert sched.comm_events[0].start == 5.0
        assert sched.comm_events[0].duration == 6.0

    def test_commit_idempotent_after_clear(self, platform, graph):
        state = MacroDataflowModel(platform).new_state()
        trial = state.trial()
        trial.edge_arrival("u", "v", 0, 1, 5.0, 3.0)
        sched = Schedule(graph, platform, model="macro-dataflow")
        trial.commit(sched)
        trial.commit(sched)  # pending cleared: no duplicates
        assert len(sched.comm_events) == 1


class TestOnePort:
    def test_serializes_same_sender(self, platform):
        state = OnePortModel(platform).new_state()
        trial = state.trial()
        a1 = trial.edge_arrival("u", "x", 0, 1, 0.0, 3.0)
        a2 = trial.edge_arrival("u", "y", 0, 2, 0.0, 3.0)
        assert a1 == 6.0
        assert a2 == 12.0  # second message waits for the send port

    def test_serializes_same_receiver(self, platform):
        state = OnePortModel(platform).new_state()
        trial = state.trial()
        a1 = trial.edge_arrival("u", "w", 0, 2, 0.0, 3.0)
        a2 = trial.edge_arrival("v", "w", 1, 2, 0.0, 3.0)
        assert a1 == 6.0
        assert a2 == 12.0  # receive port of P2 busy

    def test_disjoint_pairs_parallel(self, platform):
        plat4 = Platform.homogeneous(4, cycle_time=1.0, link=2.0)
        trial = OnePortModel(plat4).new_state().trial()
        a1 = trial.edge_arrival("a", "b", 0, 1, 0.0, 3.0)
        a2 = trial.edge_arrival("c", "d", 2, 3, 0.0, 3.0)
        assert a1 == a2 == 6.0

    def test_trials_isolated_until_commit(self, platform, graph):
        state = OnePortModel(platform).new_state()
        t1 = state.trial()
        t1.edge_arrival("u", "v", 0, 1, 0.0, 3.0)
        # discarded: a new trial starts from a clean port state
        t2 = state.trial()
        assert t2.edge_arrival("u", "v", 0, 1, 0.0, 3.0) == 6.0

    def test_commit_persists_port_state(self, platform, graph):
        state = OnePortModel(platform).new_state()
        t1 = state.trial()
        t1.edge_arrival("u", "v", 0, 1, 0.0, 3.0)
        sched = Schedule(graph, platform, model="one-port")
        t1.commit(sched)
        t2 = state.trial()
        assert t2.edge_arrival("u", "v", 0, 1, 0.0, 3.0) == 12.0

    def test_copy_isolates_state(self, platform, graph):
        state = OnePortModel(platform).new_state()
        dup = state.copy()
        t = state.trial()
        t.edge_arrival("u", "v", 0, 1, 0.0, 3.0)
        t.commit(Schedule(graph, platform, model="one-port"))
        fresh = dup.trial()
        assert fresh.edge_arrival("u", "v", 0, 1, 0.0, 3.0) == 6.0

    def test_local_edge_books_nothing(self, platform, graph):
        state = OnePortModel(platform).new_state()
        trial = state.trial()
        assert trial.edge_arrival("u", "v", 1, 1, 4.0, 3.0) == 4.0
        sched = Schedule(graph, platform, model="one-port")
        trial.commit(sched)
        assert sched.comm_events == []
        assert state.ports.send[1].is_empty()
