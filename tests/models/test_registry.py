"""The models registry: one resolution path for every consumer."""

import pytest

from repro.core import ConfigurationError, Platform
from repro.models import (
    CommunicationModel,
    MacroDataflowModel,
    NoOverlapOnePortModel,
    OnePortModel,
    RoutedOnePortModel,
    UniPortModel,
    available_models,
    make_model,
    register_model,
)


@pytest.fixture
def platform():
    return Platform.homogeneous(3)


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_models()
        for expected in ("one-port", "macro-dataflow", "routed", "uni-port",
                         "no-overlap"):
            assert expected in names

    @pytest.mark.parametrize("name,cls", [
        ("one-port", OnePortModel),
        ("macro-dataflow", MacroDataflowModel),
        ("routed", RoutedOnePortModel),
        ("uni-port", UniPortModel),
        ("no-overlap", NoOverlapOnePortModel),
    ])
    def test_make_model_resolves(self, platform, name, cls):
        model = make_model(platform, name)
        assert isinstance(model, cls)
        assert model.registry_name == name

    def test_instance_passthrough(self, platform):
        model = OnePortModel(platform)
        assert make_model(platform, model) is model

    def test_unknown_rejected(self, platform):
        with pytest.raises(ConfigurationError, match="unknown communication model"):
            make_model(platform, "telepathy")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate model name"):
            register_model("one-port")(OnePortModel)

    def test_heuristics_cli_campaign_share_resolution(self):
        """KNOWN_MODELS and the heuristics' make_model are the registry."""
        from repro.campaign.spec import KNOWN_MODELS
        from repro.heuristics import make_model as heuristics_make_model

        assert set(KNOWN_MODELS) == set(available_models())
        assert heuristics_make_model is make_model

    def test_flat_capability_flags(self):
        assert OnePortModel.supports_flat
        assert MacroDataflowModel.supports_flat
        assert UniPortModel.supports_flat
        assert NoOverlapOnePortModel.supports_flat
        assert not RoutedOnePortModel.supports_flat
        assert not CommunicationModel.supports_flat
