"""Unit tests for the routed one-port model (Section 4.3 extension)."""

import math

import numpy as np
import pytest

from repro.core import Platform, PlatformError, Schedule, TaskGraph, validate_schedule
from repro.heuristics import HEFT, FixedAllocation
from repro.models import RoutedOnePortModel, build_routing_table


def line_platform(p: int, link: float = 1.0) -> Platform:
    """P0 - P1 - ... - P(p-1): only neighbouring links exist."""
    mat = np.full((p, p), math.inf)
    np.fill_diagonal(mat, 0.0)
    for i in range(p - 1):
        mat[i][i + 1] = link
        mat[i + 1][i] = link
    return Platform([1.0] * p, mat)


class TestRoutingTable:
    def test_full_network_routes_direct(self):
        plat = Platform.homogeneous(4)
        routes = build_routing_table(plat)
        for q in range(4):
            for r in range(4):
                expected = [q] if q == r else [q, r]
                assert routes[(q, r)] == expected

    def test_line_routes_through_middle(self):
        routes = build_routing_table(line_platform(4))
        assert routes[(0, 3)] == [0, 1, 2, 3]
        assert routes[(3, 0)] == [3, 2, 1, 0]
        assert routes[(1, 2)] == [1, 2]

    def test_cheapest_not_fewest_hops(self):
        # direct link exists but costs 10; the two-hop detour costs 2
        mat = [[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]]
        plat = Platform([1.0] * 3, mat)
        routes = build_routing_table(plat)
        assert routes[(0, 2)] == [0, 1, 2]

    def test_disconnected_raises(self):
        mat = [[0.0, math.inf], [math.inf, 0.0]]
        with pytest.raises(PlatformError, match="no route"):
            build_routing_table(Platform([1.0, 1.0], mat))

    def test_deterministic(self):
        plat = line_platform(5)
        assert build_routing_table(plat) == build_routing_table(plat)


class TestRoutedTransfers:
    def test_two_hop_arrival_time(self):
        plat = line_platform(3)
        model = RoutedOnePortModel(plat)
        trial = model.new_state().trial()
        # data 2, unit links: hop [0,2) on 0->1, hop [2,4) on 1->2
        assert trial.edge_arrival("u", "v", 0, 2, 0.0, 2.0) == 4.0

    def test_hop_events_recorded(self):
        plat = line_platform(3)
        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        sched = FixedAllocation({"u": 0, "v": 2}).run(g, plat, RoutedOnePortModel(plat))
        validate_schedule(sched)
        hops = sched.comms_between(("u", "v"))
        assert [(h.src_proc, h.dst_proc) for h in hops] == [(0, 1), (1, 2)]
        assert hops[1].start >= hops[0].finish

    def test_relay_port_contention(self):
        """A relay's own receive port serializes two routed streams."""
        plat = line_platform(3)
        model = RoutedOnePortModel(plat)
        state = model.new_state()
        trial = state.trial()
        # two messages 0 -> 2 back to back: the second waits for the
        # first on both P0's send port and P1's ports
        a1 = trial.edge_arrival("u", "x", 0, 2, 0.0, 2.0)
        a2 = trial.edge_arrival("v", "y", 0, 2, 0.0, 2.0)
        assert a1 == 4.0
        assert a2 == 6.0  # pipelined: second leaves P0 at 2, relays [4,6)

    def test_heft_runs_and_validates_on_ring(self):
        import repro.graphs as graphs

        p = 5
        mat = np.full((p, p), math.inf)
        np.fill_diagonal(mat, 0.0)
        for i in range(p):
            mat[i][(i + 1) % p] = 1.0
            mat[(i + 1) % p][i] = 1.0
        ring = Platform([1.0] * p, mat)
        g = graphs.lu_graph(6, comm_ratio=2.0)
        sched = HEFT().run(g, ring, RoutedOnePortModel(ring))
        validate_schedule(sched)  # multi-hop chains + one-port rules
        assert sched.is_complete()

    def test_state_copy_isolated(self):
        plat = line_platform(3)
        model = RoutedOnePortModel(plat)
        state = model.new_state()
        dup = state.copy()
        t = state.trial()
        t.edge_arrival("u", "v", 0, 2, 0.0, 2.0)
        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        t.commit(Schedule(g, plat, model="one-port"))
        fresh = dup.trial()
        assert fresh.edge_arrival("u", "v", 0, 2, 0.0, 2.0) == 4.0
