"""Unit tests for the Section 2.3 model variants (uni-port, no-overlap)."""

import pytest

from repro import HEFT, ILHA, Platform, validate_schedule
from repro.core import TaskGraph, ValidationError
from repro.graphs import lu_graph, toy_graph, uniform_fork
from repro.models import (
    NoOverlapOnePortModel,
    UniPortModel,
    validate_no_overlap,
    validate_uni_port,
)


@pytest.fixture
def platform():
    return Platform.homogeneous(3, cycle_time=1.0, link=1.0)


class TestUniPort:
    def test_send_blocks_receive(self, platform):
        """Uni-directional: a processor cannot send and receive at once."""
        model = UniPortModel(platform)
        trial = model.new_state().trial()
        a1 = trial.edge_arrival("u", "x", 0, 1, 0.0, 2.0)  # P0 -> P1 in [0,2)
        # P1 -> P2 must wait for P1's single port
        a2 = trial.edge_arrival("v", "y", 1, 2, 0.0, 2.0)
        assert a1 == 2.0
        assert a2 == 4.0

    def test_bidirectional_allows_it(self, platform):
        from repro.models import OnePortModel

        trial = OnePortModel(platform).new_state().trial()
        a1 = trial.edge_arrival("u", "x", 0, 1, 0.0, 2.0)
        a2 = trial.edge_arrival("v", "y", 1, 2, 0.0, 2.0)
        assert a1 == a2 == 2.0  # recv on P1 and send on P1 overlap

    def test_schedules_validate(self, platform, paper_platform):
        for graph in (toy_graph(), lu_graph(6), uniform_fork(5)):
            sched = HEFT().run(graph, paper_platform, UniPortModel(paper_platform))
            validate_uni_port(sched)
            assert sched.is_complete()

    def test_never_faster_than_bidirectional_on_forks(self, platform):
        g = uniform_fork(6, weight=1.0, data=2.0)
        bi = HEFT(insertion=False).run(g, platform, "one-port")
        uni = HEFT(insertion=False).run(g, platform, UniPortModel(platform))
        assert uni.makespan() >= bi.makespan() - 1e-9

    def test_validator_catches_violation(self, platform):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_task("c", 1.0)
        g.add_dependency("a", "c", 2.0)
        from repro.core import Schedule

        s = Schedule(g, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 1, 0.0, 1.0)
        # P1 receives a->c relay... build: a on P0 sends to c on P1 while
        # P1 sends something to P2 in the same window
        g2 = TaskGraph()
        g2.add_task("a", 1.0)
        g2.add_task("b", 1.0)
        g2.add_task("c", 1.0)
        g2.add_task("d", 1.0)
        g2.add_dependency("a", "c", 2.0)
        g2.add_dependency("b", "d", 2.0)
        s = Schedule(g2, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 1, 0.0, 1.0)
        s.record_comm("a", "c", 0, 1, 1.0, 2.0, 2.0)  # P1 receiving [1,3)
        s.record_comm("b", "d", 1, 2, 1.0, 2.0, 2.0)  # P1 sending   [1,3)
        s.place("c", 1, 3.0, 4.0)
        s.place("d", 2, 3.0, 4.0)
        validate_schedule(s)  # fine under bi-directional one-port
        with pytest.raises(ValidationError, match="uni-port violation"):
            validate_uni_port(s)


class TestNoOverlap:
    def test_transfer_blocks_compute(self, platform):
        """A processor computing cannot simultaneously drive a transfer."""
        g = TaskGraph()
        g.add_task("src", 1.0)
        g.add_task("busy", 5.0)
        g.add_task("dst", 1.0)
        g.add_dependency("src", "dst", 2.0)
        model = NoOverlapOnePortModel(platform)
        sched = HEFT(priority_key=lambda v: ({"src": 0, "busy": 1, "dst": 2}[v],)).run(
            g, platform, model
        )
        validate_no_overlap(sched)

    def test_schedules_validate(self, paper_platform):
        for graph in (toy_graph(), lu_graph(6)):
            model = NoOverlapOnePortModel(paper_platform)
            sched = ILHA(b=5).run(graph, paper_platform, model)
            validate_no_overlap(sched)
            assert sched.is_complete()

    def test_requires_bind_compute(self, platform):
        model = NoOverlapOnePortModel(platform)
        with pytest.raises(ValidationError, match="bind_compute"):
            model.new_state()

    def test_validator_catches_overlap(self, platform):
        from repro.core import Schedule

        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 2.0)
        g.add_task("c", 1.0)
        g.add_dependency("a", "c", 2.0)
        s = Schedule(g, platform, model="one-port")
        s.place("a", 0, 0.0, 1.0)
        s.place("b", 0, 1.0, 3.0)  # P0 computes b during the transfer
        s.record_comm("a", "c", 0, 1, 1.0, 2.0, 2.0)
        s.place("c", 1, 3.0, 4.0)
        validate_schedule(s)  # fine with overlap allowed
        with pytest.raises(ValidationError, match="no-overlap violation"):
            validate_no_overlap(s)

    def test_strictness_ordering_on_lu(self, paper_platform):
        """More constraints, larger (or equal) makespans — measured."""
        from repro.models import OnePortModel

        g = lu_graph(8)
        bi = HEFT().run(g, paper_platform, OnePortModel(paper_platform)).makespan()
        noov = HEFT().run(
            g, paper_platform, NoOverlapOnePortModel(paper_platform)
        ).makespan()
        assert noov >= bi - 1e-9

    def test_reschedule_variant_works(self, paper_platform):
        model = NoOverlapOnePortModel(paper_platform)
        sched = ILHA(b=6, reschedule=True).run(lu_graph(6), paper_platform, model)
        validate_no_overlap(sched)
