"""CATALOG completeness lint: emissions and registry agree exactly.

Walks every ``src/repro`` module for metric emission sites
(``inc``/``add``/``add_time``/``gauge``/``span`` with a literal dotted
name) and checks both directions against
:data:`repro.obs.registry.CATALOG`: an unregistered emission would be
invisible to ``repro info``, the README catalog, and the Prometheus
``HELP``/``TYPE`` lines; a registered name with no emission site is a
dead entry that documents a metric nobody records.
"""

import re
from pathlib import Path

from repro.obs.registry import CATALOG

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: A literal dotted metric name passed to a recording method.  The dot
#: requirement keeps set/list ``add`` calls and argparse noise out.
EMIT_RE = re.compile(
    # `span` without the leading \b: aliased imports (`_obs_span`) and
    # method calls (`stats.span`) both end in `span(`
    r"(?:\b(?:inc|add|add_time|gauge)|span)"
    r"\(\s*[\"']([a-z0-9_]+(?:\.[a-z0-9_.]+)+)[\"']"
)


def emission_sites() -> dict[str, list[str]]:
    """Metric name -> source files that emit it."""
    sites: dict[str, list[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "registry.py":
            continue  # the catalog itself, not an emitter
        for match in EMIT_RE.finditer(path.read_text()):
            sites.setdefault(match.group(1), []).append(
                str(path.relative_to(SRC))
            )
    return sites


def test_every_emission_is_registered():
    unregistered = {
        name: files for name, files in emission_sites().items()
        if name not in CATALOG
    }
    assert not unregistered, (
        f"metrics emitted but missing from CATALOG: {unregistered}"
    )


def test_no_dead_catalog_entries():
    dead = sorted(set(CATALOG) - set(emission_sites()))
    assert not dead, f"CATALOG entries with no emission site: {dead}"


def test_catalog_entries_are_documented():
    for name, (unit, desc) in CATALOG.items():
        assert unit, f"{name} has no unit"
        assert desc, f"{name} has no description"
