"""Collector scoping across campaign workers.

Workers collect into fresh per-cell scopes and ship payloads back; the
parent merges them.  The merged counters must therefore be independent
of the worker count, collection must not leak outside its scope, and a
run without an active collector must not collect at all.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, HeuristicSpec, run_campaign
from repro.campaign.runner import execute_task
from repro.obs import collect, current


def small_grid() -> CampaignSpec:
    return CampaignSpec(
        name="obs-scope",
        testbeds=["lu"],
        sizes=[6, 8],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 4})],
        models=["one-port"],
    )


def _run(workers: int):
    with collect() as stats:
        result = run_campaign(small_grid(), workers=workers, cache=None)
    return result, stats


class TestWorkerScoping:
    def test_merged_counters_worker_count_independent(self):
        _, serial = _run(workers=1)
        _, pooled = _run(workers=2)
        assert serial.counters == pooled.counters
        # same cells timed either way: identical call counts, only the
        # measured seconds differ between processes
        assert {k: v[0] for k, v in serial.timers.items()} == {
            k: v[0] for k, v in pooled.timers.items()
        }

    def test_builder_counters_cross_process(self):
        """Worker-side construction counters actually reach the parent."""
        result, stats = _run(workers=2)
        assert stats.counters["builder.candidates"] > 0
        assert stats.counters["builder.commits"] > 0
        assert stats.counters["campaign.cells"] == 4
        assert stats.counters["campaign.executed"] == 4
        assert result.stats["counters"] == stats.counters

    def test_scope_restored_after_run(self):
        _run(workers=1)
        assert current() is None

    def test_no_collector_no_stats(self):
        result = run_campaign(small_grid(), workers=1, cache=None)
        assert result.stats is None

    @pytest.mark.parametrize("workers", [1, 2])
    def test_occupancy_and_phase_timers(self, workers):
        result, stats = _run(workers=workers)
        calls, seconds = stats.timers["phase.cell"]
        assert calls == 4
        assert seconds > 0
        assert stats.timers["phase.campaign.run"][0] == 1
        assert 0 < stats.gauges["campaign.occupancy"]
        assert stats.gauges["campaign.workers"] == workers
        assert result.stats["gauges"]["campaign.workers"] == workers


class TestExecuteTaskScoping:
    def test_collect_stats_flag_opens_fresh_scope(self):
        (cell,) = small_grid().expand()[:1]
        task = {**cell.task_payload(), "collect_stats": True}
        with collect() as ambient:
            key, cell_dict, payload = execute_task(task)
        assert key == cell.key
        assert payload is not None
        assert payload["counters"]["builder.commits"] > 0
        # the cell collected into its own scope, not the ambient one
        assert ambient.counters == {}

    def test_without_flag_no_payload(self):
        (cell,) = small_grid().expand()[:1]
        key, cell_dict, payload = execute_task(cell.task_payload())
        assert key == cell.key
        assert payload is None
