"""Metrics export: Prometheus text exposition + journal folding."""

import pytest

from repro.obs import Journal, journal_summary, prometheus_text
from repro.obs.registry import Stats


def stats_with_everything() -> Stats:
    stats = Stats()
    stats.inc("campaign.cells", 8)
    stats.add_time("phase.cell", 0.25, calls=8)
    stats.gauge("campaign.occupancy", 0.75)
    return stats


class TestPrometheusText:
    def test_counters_timers_gauges(self):
        text = prometheus_text(stats_with_everything())
        assert "repro_campaign_cells_total 8" in text
        assert "repro_phase_cell_seconds_total 0.25" in text
        assert "repro_phase_cell_calls_total 8" in text
        assert "repro_campaign_occupancy 0.75" in text
        assert text.endswith("\n")

    def test_help_and_type_lines_come_from_the_catalog(self):
        text = prometheus_text(stats_with_everything())
        assert ("# HELP repro_campaign_cells_total "
                "unique cells in the expanded campaign") in text
        assert "# TYPE repro_campaign_cells_total counter" in text
        assert "# TYPE repro_campaign_occupancy gauge" in text

    def test_names_are_sanitized(self):
        stats = Stats()
        stats.inc("ad-hoc.metric/name", 1)
        assert "repro_ad_hoc_metric_name_total 1" in prometheus_text(stats)

    def test_accepts_a_payload_dict(self):
        text = prometheus_text(stats_with_everything().payload())
        assert "repro_campaign_cells_total 8" in text

    def test_empty_stats_render_empty(self):
        assert prometheus_text(Stats()) == ""


def lifecycle_records() -> list[dict]:
    return [
        {"ev": "campaign_start", "name": "demo", "wall": 100.0, "worker": "parent"},
        {"ev": "published", "key": "a", "wall": 100.1, "worker": "parent"},
        {"ev": "published", "key": "b", "wall": 100.1, "worker": "parent"},
        {"ev": "published", "key": "c", "wall": 100.1, "worker": "parent"},
        {"ev": "claimed", "key": "a", "wall": 100.2, "worker": "w1"},
        {"ev": "claimed", "key": "b", "wall": 100.2, "worker": "w2"},
        {"ev": "completed", "key": "a", "wall": 100.5, "worker": "w1",
         "stats": {"counters": {"builder.commits": 3}}},
        {"ev": "completed", "key": "b", "wall": 100.6, "worker": "w2",
         "error": "boom"},
    ]


class TestJournalSummary:
    def test_cell_sets_reconstruct_from_lifecycle(self):
        summary = journal_summary(lifecycle_records())
        assert summary["campaign"] == "demo"
        assert summary["state"] == "running"
        assert summary["cells"] == {
            "queued": 1, "running": 0, "done": 2, "failed": 1,
        }
        assert summary["workers"] == ["w1", "w2"]
        assert summary["elapsed_s"] == pytest.approx(0.6)
        gauges = summary["stats"]["gauges"]
        assert gauges["journal.cells.done"] == 2
        assert gauges["journal.workers"] == 2

    def test_expired_cells_requeue(self):
        records = lifecycle_records() + [
            {"ev": "claimed", "key": "c", "wall": 100.7, "worker": "w1"},
            {"ev": "expired", "key": "c", "wall": 101.5, "worker": "parent"},
        ]
        summary = journal_summary(records)
        assert summary["cells"]["queued"] == 1
        assert summary["cells"]["running"] == 0

    def test_cell_payloads_merge_when_no_snapshot(self):
        summary = journal_summary(lifecycle_records())
        assert summary["stats"]["counters"]["builder.commits"] == 3

    def test_snapshot_beats_cell_payloads(self):
        records = lifecycle_records() + [
            {"ev": "snapshot", "wall": 100.8, "worker": "parent",
             "stats": {"counters": {"builder.commits": 10}}},
        ]
        summary = journal_summary(records)
        assert summary["stats"]["counters"]["builder.commits"] == 10

    def test_campaign_end_beats_everything(self):
        records = lifecycle_records() + [
            {"ev": "snapshot", "wall": 100.8, "worker": "parent",
             "stats": {"counters": {"builder.commits": 10}}},
            {"ev": "campaign_end", "wall": 101.0, "worker": "parent",
             "stats": {"counters": {"builder.commits": 42}}},
        ]
        summary = journal_summary(records)
        assert summary["state"] == "finished"
        assert summary["stats"]["counters"]["builder.commits"] == 42

    def test_accepts_a_journal_path(self, tmp_path):
        with Journal(tmp_path / "j.jsonl") as journal:
            journal.emit("campaign_start", name="fs")
            journal.emit("settled", key="k")
        summary = journal_summary(tmp_path / "j.jsonl")
        assert summary["campaign"] == "fs"
        assert summary["cells"]["done"] == 1

    def test_empty_journal_is_idle(self):
        summary = journal_summary([])
        assert summary["state"] == "idle"
        assert summary["records"] == 0
        assert summary["cells"]["done"] == 0
