"""Durable event journal: atomic appends, torn tails, decision neutrality.

The journal follows the result cache's durability discipline (one
atomic ``O_APPEND`` write per record, readers skip torn tails, writers
heal them) and must be strictly decision-neutral: a campaign run with
the journal on produces bit-identical cells and cache rows to one with
it off.
"""

import json

from repro.campaign import CampaignSpec, HeuristicSpec, ResultCache, run_campaign
from repro.obs import Journal, collect, read_journal
from repro.obs.journal import (
    JOURNAL_FILENAME,
    JOURNAL_SCHEMA_VERSION,
    journal_path,
)


def spec() -> CampaignSpec:
    return CampaignSpec(
        name="neutrality",
        testbeds=["fork-join"],
        sizes=[5, 7],
        heuristics=[HeuristicSpec.of("heft")],
        models=["one-port"],
        seeds=[0],
    )


class TestWriter:
    def test_records_are_self_identifying(self, tmp_path):
        with Journal(tmp_path / "j.jsonl") as journal:
            record = journal.emit("claimed", key="k1", ttl=5.0)
        assert record["v"] == JOURNAL_SCHEMA_VERSION
        assert record["ev"] == "claimed"
        assert record["worker"] == "parent"
        assert record["key"] == "k1" and record["ttl"] == 5.0
        assert isinstance(record["pid"], int)
        assert isinstance(record["wall"], float)
        assert isinstance(record["mono"], float)
        (read_back,) = read_journal(tmp_path / "j.jsonl")
        assert read_back == json.loads(json.dumps(record))

    def test_explicit_fields_override_identity_stamps(self, tmp_path):
        with Journal(tmp_path / "j.jsonl") as journal:
            record = journal.emit("completed", worker="w-9", key="k")
        assert record["worker"] == "w-9"

    def test_open_is_lazy(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        assert not (tmp_path / "j.jsonl").exists()
        journal.emit("x")
        assert (tmp_path / "j.jsonl").exists()
        journal.close()

    def test_two_writers_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, worker="a") as one, Journal(path, worker="b") as two:
            for i in range(20):
                (one if i % 2 else two).emit("tick", i=i)
        records = read_journal(path)
        assert sorted(r["i"] for r in records) == list(range(20))
        assert {r["worker"] for r in records} == {"a", "b"}

    def test_torn_tail_is_healed_by_the_next_writer(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.emit("first")
        with path.open("a") as fh:
            fh.write('{"ev": "torn')  # crash mid-append, no newline
        assert [r["ev"] for r in read_journal(path)] == ["first"]
        with Journal(path) as journal:
            journal.emit("second")
        # the healed record parses; the torn fragment stays skipped
        assert [r["ev"] for r in read_journal(path)] == ["first", "second"]

    def test_counts_events_under_a_collector(self, tmp_path):
        with collect() as stats, Journal(tmp_path / "j.jsonl") as journal:
            journal.emit("a")
            journal.emit("b")
        assert stats.counters["journal.events"] == 2


class TestReader:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"ev": "good", "v": 1}\n'
            "not json at all\n"
            '["ev", "not-a-dict"]\n'
            '{"no_ev_field": 1}\n'
            '{"ev": "also-good"}\n'
        )
        assert [r["ev"] for r in read_journal(path)] == ["good", "also-good"]

    def test_journal_path_resolves_spool_dirs(self, tmp_path):
        assert journal_path(tmp_path) == tmp_path / JOURNAL_FILENAME
        file = tmp_path / "explicit.jsonl"
        assert journal_path(file) == file


class TestDecisionNeutrality:
    def test_journal_on_off_bit_identical_cells_and_cache(self, tmp_path):
        """Tentpole guard: the journal observes, never steers — cells,
        metrics, and durable cache rows match byte for byte with it on
        or off."""
        plain_cache = ResultCache(tmp_path / "plain")
        with collect() as plain_stats:
            plain = run_campaign(spec(), workers=1, cache=plain_cache)

        journaled_cache = ResultCache(tmp_path / "journaled")
        with collect() as journaled_stats:
            journaled = run_campaign(
                spec(), workers=1, cache=journaled_cache,
                journal=tmp_path / "journal.jsonl",
            )

        def cells(result):
            return [
                {k: v for k, v in o.result.as_dict().items() if k != "runtime_s"}
                for o in result.outcomes
            ]

        assert cells(plain) == cells(journaled)

        def cache_keys(cache):
            return {
                json.loads(line)["key"]
                for line in cache.path.read_text().splitlines()
                if line.strip()
            }

        assert cache_keys(plain_cache) == cache_keys(journaled_cache)
        # identical decision-relevant counters: only the journal's own
        # bookkeeping may differ between the two runs
        strip = lambda c: {k: v for k, v in c.items()  # noqa: E731
                           if not k.startswith("journal.")}
        assert strip(plain_stats.counters) == strip(journaled_stats.counters)

        events = [r["ev"] for r in read_journal(tmp_path / "journal.jsonl")]
        assert events[0] == "campaign_start" and events[-1] == "campaign_end"
        assert events.count("settled") == 2

    def test_serial_journal_records_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(spec(), workers=1, cache=cache)
        run_campaign(
            spec(), workers=1, cache=cache, journal=tmp_path / "warm.jsonl"
        )
        events = [r["ev"] for r in read_journal(tmp_path / "warm.jsonl")]
        assert events.count("cached") == 2 and "settled" not in events
