"""The ``repro`` logging namespace and the ``REPRO_LOG`` env knob."""

from __future__ import annotations

import logging

import pytest

from repro.obs import LOG_ENV_VAR, configure_logging, get_logger
from repro.obs.log import _ROOT


def _stderr_handler():
    return next(
        (h for h in _ROOT.handlers if getattr(h, "_repro_stderr", False)), None
    )


@pytest.fixture
def clean_handler():
    """Remove the stderr handler around a test so installs are observable."""
    before = _stderr_handler()
    if before is not None:
        _ROOT.removeHandler(before)
    yield
    after = _stderr_handler()
    if after is not None:
        _ROOT.removeHandler(after)
    if before is not None:
        _ROOT.addHandler(before)


class TestNamespace:
    def test_get_logger_nests_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("heuristics").name == "repro.heuristics"
        assert get_logger("heuristics").parent.name == "repro"

    def test_default_is_quiet_null_handler(self):
        assert any(isinstance(h, logging.NullHandler) for h in _ROOT.handlers)

    def test_records_propagate_for_capture(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            get_logger("obs").info("hello from the library")
        assert any("hello from the library" in r.getMessage() for r in caplog.records)


class TestConfigure:
    def test_noop_without_env_or_level(self, monkeypatch, clean_handler):
        monkeypatch.delenv(LOG_ENV_VAR, raising=False)
        configure_logging()
        assert _stderr_handler() is None

    def test_env_var_installs_stderr_handler(self, monkeypatch, clean_handler):
        monkeypatch.setenv(LOG_ENV_VAR, "info")
        configure_logging()
        handler = _stderr_handler()
        assert handler is not None
        assert handler.level == logging.INFO

    def test_idempotent_and_relevels(self, monkeypatch, clean_handler):
        monkeypatch.delenv(LOG_ENV_VAR, raising=False)
        configure_logging("DEBUG")
        first = _stderr_handler()
        configure_logging("ERROR")
        second = _stderr_handler()
        assert first is second
        assert second.level == logging.ERROR

    def test_numeric_level_accepted(self, monkeypatch, clean_handler):
        monkeypatch.setenv(LOG_ENV_VAR, "10")
        configure_logging()
        assert _stderr_handler().level == logging.DEBUG

    def test_bad_level_rejected(self, monkeypatch, clean_handler):
        monkeypatch.delenv(LOG_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="REPRO_LOG"):
            configure_logging("shouty")
