"""Decision neutrality: instrumentation must never change a schedule.

The observability layer's hard constraint — every counter site is a
pure observer.  For every registered heuristic x flat-capable model x
kernel backend, running under an active :func:`repro.obs.collect`
scope must produce a schedule *bit-identical* (placements, starts,
finishes, comm events, exact float equality) to the stats-off run.
Also covered: the search engine, the online engine, and the campaign
runner, whose event streams and aggregates must match with stats on.
"""

from __future__ import annotations

import pytest

from repro.graphs import layered_testbed, lu_graph
from repro.heuristics import available_schedulers, get_scheduler
from repro.heuristics.base import make_model
from repro.kernel.backends import use_backend
from repro.kernel.cext_backend import cext_available
from repro.obs import collect, stage_detail_scope

#: Constructor overrides; ``None`` excludes a scheduler from the sweep
#: (``fixed`` needs a per-graph allocation, ``ils`` goes through replay
#: and is exercised separately below).
SCHEDULER_KWARGS = {
    "fixed": None,
    "ils": None,
    "ilha": {"b": 4},
}

#: Every model with a flat booker (the instrumented construction path).
MODELS = ["one-port", "macro-dataflow", "uni-port", "no-overlap"]

BACKENDS = ["python", "numpy"] + (["cext"] if cext_available() else [])

SWEEP = [n for n in available_schedulers() if SCHEDULER_KWARGS.get(n, {}) is not None]


def assert_identical(a, b):
    assert a.placements.keys() == b.placements.keys()
    for task, placement in a.placements.items():
        other = b.placements[task]
        assert placement.proc == other.proc, f"proc drift on {task!r}"
        assert placement.start == other.start, f"start drift on {task!r}"
        assert placement.finish == other.finish, f"finish drift on {task!r}"
    assert sorted(a.comm_events) == sorted(b.comm_events)
    assert a.makespan() == b.makespan()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("name", SWEEP)
def test_construction_identical_with_stats(name, model_name, backend, paper_platform):
    graph = lu_graph(6)
    factory = lambda: get_scheduler(name, **SCHEDULER_KWARGS.get(name, {}))  # noqa: E731
    with use_backend(backend):
        off = factory().run(graph, paper_platform, make_model(paper_platform, model_name))
        with collect() as stats:
            on = factory().run(graph, paper_platform, make_model(paper_platform, model_name))
    assert_identical(off, on)
    # the run must also have *observed* something on the flat path
    # (rescheduling heuristics commit trial placements too, so commits
    # is a lower bound, not an equality)
    assert on.state_impl != "object"
    assert stats.counters.get("builder.commits", 0) >= len(on.placements)


@pytest.mark.parametrize("backend", BACKENDS)
def test_stage_timers_are_opt_in(backend, paper_platform):
    """The per-stage breakdown timers (``stage.*``) only record inside
    :func:`stage_detail_scope` — and must stay decision-neutral there."""
    graph = lu_graph(6)
    with use_backend(backend):
        with collect() as plain_stats:
            off = get_scheduler("heft").run(graph, paper_platform, "one-port")
        with collect() as stats, stage_detail_scope():
            on = get_scheduler("heft").run(graph, paper_platform, "one-port")
    assert not any(n.startswith("stage.") for n in plain_stats.timers)
    staged = {n for n in stats.timers if n.startswith("stage.")}
    assert "stage.sweep" in staged and "stage.commit" in staged
    assert stats.timers["stage.sweep"][1] > 0.0
    assert_identical(off, on)


@pytest.mark.parametrize("backend", BACKENDS)
def test_ils_search_identical_with_stats(backend, paper_platform):
    graph = layered_testbed(4, seed=7)
    factory = lambda: get_scheduler(  # noqa: E731
        "ils", base="heft", budget=120, seed=3
    )
    with use_backend(backend):
        off = factory().run(graph, paper_platform, "one-port")
        with collect() as stats:
            on = factory().run(graph, paper_platform, "one-port")
    assert_identical(off, on)
    assert off.search_stats == on.search_stats
    assert stats.counters["search.previews"] == on.search_stats["evals"]
    assert stats.counters["search.commits"] >= on.search_stats["accepted"]


def test_online_engine_identical_with_stats():
    from repro.experiments import paper_platform
    from repro.online import make_workload, simulate_online

    def run():
        workload = make_workload("lu", 8, 4, arrival="poisson:rate=0.002", seed=0)
        return simulate_online(
            workload,
            paper_platform(),
            policy="periodic:period=500",
            noise="lognormal:sigma=0.3",
            seed=0,
            log_events=True,
        )

    off = run()
    with collect() as stats:
        on = run()
    assert off.placements == on.placements
    assert off.transfers == on.transfers
    assert off.event_log == on.event_log
    assert off.aggregate() == on.aggregate()
    assert stats.counters["online.events.arrival"] == 4
    assert stats.counters["online.activities"] > 0


def test_campaign_cells_identical_with_stats():
    from repro.campaign import CampaignSpec, HeuristicSpec, run_campaign

    spec = CampaignSpec(
        name="neutrality",
        testbeds=["lu"],
        sizes=[6],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 4})],
        models=["one-port"],
    )

    def rows(result):
        return [
            {k: v for k, v in o.result.as_dict().items() if k != "runtime_s"}
            for o in result.outcomes
        ]

    off = run_campaign(spec, workers=1, cache=None)
    with collect():
        on = run_campaign(spec, workers=1, cache=None)
    assert rows(off) == rows(on)
    assert off.stats is None
    assert on.stats is not None
    assert on.stats["counters"]["campaign.cells"] == 2
