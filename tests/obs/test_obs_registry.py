"""The ``repro.obs`` collector: recording, merging, scoping, no-op path."""

from __future__ import annotations

import pytest

from repro.graphs import lu_graph
from repro.heuristics import get_scheduler
from repro.obs import (
    CATALOG,
    Stats,
    collect,
    current,
    enabled,
    metric_names,
    span,
)


class TestStats:
    def test_counters_accumulate(self):
        s = Stats()
        s.inc("builder.candidates")
        s.inc("builder.candidates", 4)
        s.add("online.port_wait_time", 2.5)
        assert s.counters["builder.candidates"] == 5
        assert s.counters["online.port_wait_time"] == 2.5

    def test_gauges_overwrite(self):
        s = Stats()
        s.gauge("campaign.workers", 2)
        s.gauge("campaign.workers", 4)
        assert s.gauges["campaign.workers"] == 4

    def test_add_time_accumulates_calls_and_seconds(self):
        s = Stats()
        s.add_time("phase.cell", 0.5)
        s.add_time("phase.cell", 1.5, calls=3)
        assert s.timers["phase.cell"] == [4, 2.0]

    def test_span_records_timer_and_trace_span(self):
        s = Stats()
        with s.span("phase.statics"):
            pass
        calls, seconds = s.timers["phase.statics"]
        assert calls == 1 and seconds >= 0.0
        (name, start, dur), = s.spans
        assert name == "phase.statics" and start >= 0.0 and dur >= 0.0

    def test_payload_merge_roundtrip(self):
        a = Stats()
        a.inc("builder.commits", 3)
        a.add_time("phase.cell", 1.0)
        a.gauge("campaign.workers", 1)
        b = Stats()
        b.inc("builder.commits", 2)
        b.inc("gap.searches", 7)
        b.add_time("phase.cell", 0.5, calls=2)
        b.gauge("campaign.workers", 8)
        with b.span("phase.statics"):
            pass
        a.merge(b.payload())
        assert a.counters == {"builder.commits": 5, "gap.searches": 7}
        assert a.timers["phase.cell"] == [3, 1.5]
        assert a.gauges["campaign.workers"] == 8  # last writer wins
        assert [name for name, _, _ in a.spans] == ["phase.statics"]

    def test_merge_accepts_stats_directly(self):
        a, b = Stats(), Stats()
        b.inc("builder.commits")
        a.merge(b)
        assert a.counters["builder.commits"] == 1

    def test_merge_is_worker_split_invariant(self):
        """Merging N partial payloads equals one combined collector."""
        whole = Stats()
        whole.inc("builder.candidates", 10)
        whole.add_time("phase.cell", 3.0, calls=2)
        parts = Stats()
        for n, secs in ((4, 1.0), (6, 2.0)):
            p = Stats()
            p.inc("builder.candidates", n)
            p.add_time("phase.cell", secs)
            parts.merge(p.payload())
        assert parts.counters == whole.counters
        assert parts.timers == whole.timers

    def test_table_output(self):
        s = Stats()
        s.inc("builder.candidates", 1234)
        s.add_time("phase.statics", 0.001)
        s.gauge("campaign.occupancy", 0.5)
        out = s.table()
        assert "builder.candidates" in out
        assert "1,234" in out
        assert "phase.statics" in out
        assert "campaign.occupancy" in out

    def test_table_empty(self):
        assert Stats().table() == "(no metrics collected)"


class TestScoping:
    def test_disabled_by_default(self):
        assert current() is None
        assert not enabled()

    def test_collect_activates_and_restores(self):
        with collect() as stats:
            assert current() is stats
            assert enabled()
        assert current() is None

    def test_nested_collect_shadows_outer(self):
        with collect() as outer:
            with collect() as inner:
                current().inc("builder.commits")
            assert inner.counters == {"builder.commits": 1}
            assert outer.counters == {}

    def test_collect_into_existing_scope(self):
        acc = Stats()
        with collect(acc):
            current().inc("builder.commits")
        with collect(acc):
            current().inc("builder.commits")
        assert acc.counters["builder.commits"] == 2

    def test_module_span_noop_when_disabled(self):
        with span("phase.statics") as got:
            assert got is None

    def test_module_span_records_when_enabled(self):
        with collect() as stats:
            with span("phase.statics"):
                pass
        assert "phase.statics" in stats.timers

    def test_scope_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with collect():
                raise RuntimeError("boom")
        assert current() is None


class TestCatalog:
    def test_metric_names_sorted_and_complete(self):
        names = metric_names()
        assert names == sorted(CATALOG)
        assert "builder.candidates" in names
        assert all(
            isinstance(unit, str) and isinstance(desc, str)
            for unit, desc in CATALOG.values()
        )

    def test_emitted_metrics_are_registered(self, paper_platform):
        """A real construction only emits catalogued names."""
        with collect() as stats:
            get_scheduler("heft").run(lu_graph(8), paper_platform, "one-port")
        assert stats.counters, "expected builder counters from a flat run"
        assert set(stats.counters) <= set(CATALOG)
        assert set(stats.timers) <= set(CATALOG)
