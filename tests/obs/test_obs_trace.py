"""Chrome-trace export: schema, non-overlap, and the three views."""

from __future__ import annotations

import json

import pytest

from repro.graphs import lu_graph, toy_graph
from repro.heuristics import get_scheduler
from repro.obs import (
    collect,
    online_trace,
    schedule_trace,
    validate_trace,
    write_trace,
)
from repro.obs.trace import PID_COMPUTE, PID_ENGINE, PID_PHASES, PID_PORTS


def _heft_schedule(platform, graph=None):
    return get_scheduler("heft").run(graph or lu_graph(8), platform, "one-port")


def _online_result():
    from repro.experiments import paper_platform
    from repro.online import make_workload, simulate_online

    workload = make_workload("lu", 8, 4, arrival="poisson:rate=0.002", seed=0)
    return simulate_online(
        workload,
        paper_platform(),
        policy="periodic:period=500",
        noise="exact",
        seed=0,
        log_events=True,
    )


class TestScheduleTrace:
    def test_toy_figure4_trace(self, two_identical):
        """The paper's toy DAG: every task is one X event on its track."""
        sched = _heft_schedule(two_identical, toy_graph())
        trace = schedule_trace(sched)
        summary = validate_trace(trace)
        compute = [
            ev
            for ev in trace["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == PID_COMPUTE
        ]
        assert len(compute) == len(sched.placements)
        assert summary["by_phase"]["X"] >= len(sched.placements)
        assert trace["metadata"]["view"] == "schedule"
        assert trace["metadata"]["makespan"] == sched.makespan()

    def test_events_mirror_placements(self, paper_platform):
        sched = _heft_schedule(paper_platform)
        trace = schedule_trace(sched)
        by_name = {
            ev["name"]: ev
            for ev in trace["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == PID_COMPUTE
        }
        for task, placement in sched.placements.items():
            ev = by_name[str(task)]
            assert ev["tid"] == placement.proc
            assert ev["ts"] == placement.start
            assert ev["ts"] + ev["dur"] == placement.finish

    def test_port_tracks_split_send_recv(self, paper_platform):
        sched = _heft_schedule(paper_platform)
        trace = schedule_trace(sched)
        port_tids = {
            ev["tid"]
            for ev in trace["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == PID_PORTS
        }
        assert port_tids, "lu-8 on the paper platform must communicate"
        for e in sched.comm_events:
            assert 2 * e.src_proc in port_tids
            assert 2 * e.dst_proc + 1 in port_tids
        validate_trace(trace)  # one-port => port tracks never overlap

    def test_phase_spans_attach_with_stats(self, paper_platform):
        with collect() as stats:
            sched = _heft_schedule(paper_platform)
        trace = schedule_trace(sched, stats)
        phases = [
            ev
            for ev in trace["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == PID_PHASES
        ]
        assert any(ev["name"] == "phase.statics" for ev in phases)
        validate_trace(trace)


class TestOnlineTrace:
    def test_online_view_validates(self):
        result = _online_result()
        trace = online_trace(result)
        summary = validate_trace(trace)
        assert trace["metadata"]["view"] == "online"
        assert trace["metadata"]["jobs"] == len(result.jobs)
        assert summary["by_phase"].get("i", 0) >= len(result.jobs)  # arrivals

    def test_engine_markers_and_counters(self):
        trace = online_trace(_online_result())
        engine = [ev for ev in trace["traceEvents"] if ev["pid"] == PID_ENGINE]
        names = {ev["name"] for ev in engine}
        assert any(n.startswith("arrival") for n in names)
        assert "queue depth" in names
        assert "running" in names

    def test_compute_events_mirror_placements(self):
        result = _online_result()
        trace = online_trace(result)
        compute = [
            ev
            for ev in trace["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == PID_COMPUTE
        ]
        expected = sum(len(rows) for rows in result.placements.values())
        assert len(compute) == expected


class TestValidate:
    def test_missing_ph_rejected(self):
        with pytest.raises(ValueError, match="missing ph/pid"):
            validate_trace({"traceEvents": [{"pid": 1}]})

    def test_non_numeric_ts_rejected(self):
        bad = {"ph": "X", "pid": 2, "tid": 0, "ts": "soon", "dur": 1.0}
        with pytest.raises(ValueError, match="missing ts"):
            validate_trace({"traceEvents": [bad]})

    def test_negative_duration_rejected(self):
        bad = {"ph": "X", "pid": 2, "tid": 0, "ts": 0.0, "dur": -1.0}
        with pytest.raises(ValueError, match="dur < 0"):
            validate_trace({"traceEvents": [bad]})

    def test_track_overlap_rejected(self):
        events = [
            {"ph": "X", "pid": 2, "tid": 0, "ts": 0.0, "dur": 5.0, "name": "a"},
            {"ph": "X", "pid": 2, "tid": 0, "ts": 3.0, "dur": 5.0, "name": "b"},
        ]
        with pytest.raises(ValueError, match="overlaps"):
            validate_trace({"traceEvents": events})

    def test_phase_track_exempt_from_overlap(self):
        events = [
            {"ph": "X", "pid": PID_PHASES, "tid": 0, "ts": 0.0, "dur": 5.0},
            {"ph": "X", "pid": PID_PHASES, "tid": 0, "ts": 1.0, "dur": 2.0},
        ]
        validate_trace({"traceEvents": events})  # nested spans are fine

    def test_not_a_trace_rejected(self):
        with pytest.raises(ValueError):
            validate_trace({"events": []})


class TestWrite:
    def test_write_trace_roundtrips(self, tmp_path, paper_platform):
        trace = schedule_trace(_heft_schedule(paper_platform))
        path = write_trace(trace, tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert validate_trace(loaded) == validate_trace(trace)
