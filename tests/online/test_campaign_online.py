"""The campaign ``online`` axis: keys, determinism, caching, validation."""

import pytest

from repro.campaign import CampaignSpec, HeuristicSpec, ResultCache, run_campaign
from repro.core.exceptions import ConfigurationError

ENTRY_STATIC = {
    "policy": "static",
    "arrival": "poisson:rate=0.01",
    "noise": "exact",
    "jobs": 3,
    "seed": 0,
}
ENTRY_NOISY = {
    "policy": "periodic:period=200",
    "arrival": "burst:size=3,gap=100",
    "noise": "lognormal:sigma=0.3",
    "jobs": 3,
    "seed": 1,
}


def online_spec(name="online-test", online=None, **kwargs):
    return CampaignSpec(
        name=name,
        testbeds=kwargs.pop("testbeds", ["fork-join"]),
        sizes=kwargs.pop("sizes", [6]),
        heuristics=kwargs.pop("heuristics", [HeuristicSpec.of("heft")]),
        online=online if online is not None else [ENTRY_STATIC],
        **kwargs,
    )


def normalized(cells):
    """Cell dicts with the wall-clock measurements zeroed."""
    out = []
    for cell in cells:
        d = cell.as_dict()
        d["runtime_s"] = 0.0
        if "extra" in d:
            d["extra"] = {k: v for k, v in d["extra"].items()
                          if k != "events_per_s"}
        out.append(d)
    return out


class TestExpansion:
    def test_online_entries_multiply_cells(self):
        spec = online_spec(online=[ENTRY_STATIC, ENTRY_NOISY, None])
        cells = spec.expand()
        assert len(cells) == 3
        assert [c.online is not None for c in cells] == [True, True, False]

    def test_online_block_hashes_into_keys(self):
        a = online_spec(online=[ENTRY_STATIC]).expand()[0]
        b = online_spec(online=[{**ENTRY_STATIC, "seed": 9}]).expand()[0]
        offline = online_spec(online=[None]).expand()[0]
        assert len({a.key, b.key, offline.key}) == 3
        assert "online" in a.key_payload()
        assert "online" not in offline.key_payload()

    def test_offline_keys_unchanged_by_the_axis(self):
        """Adding the field must not invalidate existing caches."""
        plain = CampaignSpec(name="x", testbeds=["fork-join"], sizes=[6],
                             heuristics=[HeuristicSpec.of("heft")])
        with_axis = online_spec(online=[None])
        assert plain.expand()[0].key == with_axis.expand()[0].key

    def test_labels_distinguish_policies(self):
        spec = online_spec(online=[ENTRY_STATIC, ENTRY_NOISY])
        labels = [c.heuristic.display for c in spec.expand()]
        assert len(set(labels)) == 2
        assert "static[heft]" in labels[0]
        assert "periodic:period=200[heft]" in labels[1]

    def test_spec_round_trips_through_json(self, tmp_path):
        spec = online_spec(online=[ENTRY_STATIC, None])
        path = spec.to_json(tmp_path / "spec.json")
        loaded = CampaignSpec.from_json(path)
        assert loaded.online == [ENTRY_STATIC, None]
        assert [c.key for c in loaded.expand()] == [c.key for c in spec.expand()]


class TestValidation:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            online_spec(online=[{"policy": "static", "tempo": 3}])

    def test_bad_policy_noise_arrival_rejected(self):
        for entry in (
            {"policy": "nonsense"},
            {"noise": "gaussian"},
            {"arrival": "poisson:rate=-2"},
            {"jobs": 0},
        ):
            with pytest.raises(ConfigurationError):
                online_spec(online=[entry])

    def test_online_requires_one_port(self):
        with pytest.raises(ConfigurationError):
            online_spec(online=[ENTRY_STATIC],
                        models=["one-port", "macro-dataflow"])

    def test_online_and_improve_exclusive(self):
        with pytest.raises(ConfigurationError):
            online_spec(online=[ENTRY_STATIC], improve=[{"budget": 50}])


class TestExecution:
    def test_workers_and_cache_deterministic(self, tmp_path):
        """Identical metrics for 1 worker, 2 workers, and warm cache."""
        spec = online_spec(online=[ENTRY_STATIC, ENTRY_NOISY, None])
        cache = ResultCache(tmp_path / "cache")
        cold = run_campaign(spec, workers=1, cache=cache)
        two = run_campaign(spec, workers=2, cache=ResultCache(tmp_path / "c2"))
        warm = run_campaign(spec, workers=1, cache=cache)
        assert warm.cache_hits == len(warm.outcomes)
        assert normalized(cold.cells) == normalized(two.cells)
        assert normalized(cold.cells) == normalized(warm.cells)

    def test_online_cells_carry_extra_metrics(self, tmp_path):
        result = run_campaign(online_spec(online=[ENTRY_NOISY]), workers=1)
        (cell,) = result.cells
        assert cell.extra["online"] is True
        assert cell.extra["policy"] == "periodic"
        assert cell.extra["noise"] == "lognormal"
        assert cell.extra["jobs"] == 3
        assert cell.extra["mean_flow"] > 0
        assert cell.extra["mean_stretch"] >= 1.0
        assert cell.makespan > 0
        assert cell.speedup > 0

    def test_offline_cells_have_empty_extra(self):
        result = run_campaign(online_spec(online=[None]), workers=1)
        (cell,) = result.cells
        assert cell.extra == {}
        assert "extra" not in cell.as_dict()

    def test_ready_dispatch_decoupled_from_heuristic_axis(self):
        """ready-dispatch has no planner: its cells collapse to one per
        grid point, share cache keys across heuristic axes, and carry a
        planner-free label."""
        entry = {**ENTRY_STATIC, "policy": "ready-dispatch"}
        one = online_spec(online=[entry], heuristics=[HeuristicSpec.of("heft")])
        other = online_spec(online=[entry],
                            heuristics=[HeuristicSpec.of("min-min")])
        many = online_spec(online=[entry],
                           heuristics=[HeuristicSpec.of("heft"),
                                       HeuristicSpec.of("min-min")])
        assert len(many.expand()) == 1  # not one per heuristic
        (key_a,) = [c.key for c in one.expand()]
        (key_b,) = [c.key for c in other.expand()]
        assert key_a == key_b
        result = run_campaign(one, workers=1)
        (cell,) = result.cells
        assert "heft" not in cell.heuristic
        assert cell.heuristic.startswith("ready-dispatch")
        za = normalized(result.cells)
        zb = normalized(run_campaign(other, workers=1).cells)
        assert za == zb
