"""CLI coverage: ``repro online`` and the machine-readable ``info --json``."""

import json

import pytest

from repro.cli import main


class TestOnlineCommand:
    def test_default_run(self, capsys):
        assert main([
            "online", "--testbed", "lu", "--size", "8", "--jobs", "3",
            "--arrival", "poisson:rate=0.01", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean flow" in out
        assert "events/s" in out

    def test_policies_and_noise(self, capsys):
        for policy in ["periodic:period=400", "reactive:threshold=0.1",
                       "ready-dispatch"]:
            assert main([
                "online", "--testbed", "forkjoin", "--size", "6",
                "--jobs", "3", "--policy", policy,
                "--noise", "lognormal:sigma=0.3", "--seed", "2",
            ]) == 0
            assert "job(s)" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main([
            "online", "--testbed", "lu", "--size", "8", "--jobs", "3",
            "--policy", "static", "--heuristic", "ilha:b=4", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"]["name"] == "static"
        assert payload["policy"]["heuristic"] == {"name": "ilha", "kwargs": {"b": 4}}
        assert len(payload["jobs"]) == 3
        assert payload["aggregate"]["jobs"] == 3
        for job in payload["jobs"]:
            assert job["flow"] == job["completion"] - job["arrival"]

    def test_json_deterministic(self, capsys):
        argv = ["online", "--testbed", "lu", "--size", "8", "--jobs", "4",
                "--noise", "straggler", "--seed", "5", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        first.pop("events_per_s"), second.pop("events_per_s")
        assert first == second

    def test_bad_specs_exit_cleanly(self):
        with pytest.raises(SystemExit):
            main(["online", "--policy", "nonsense"])
        with pytest.raises(SystemExit):
            main(["online", "--arrival", "poisson:rate=-1"])
        with pytest.raises(SystemExit):
            main(["online", "--noise", "gaussian"])


class TestInfoJson:
    def test_json_registries(self, capsys):
        assert main(["info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        regs = payload["registries"]
        assert "heft" in regs["schedulers"]
        assert "lu" in regs["testbeds"]
        assert regs["policies"] == ["periodic", "reactive", "ready-dispatch",
                                    "static"]
        assert regs["noise_models"] == ["exact", "lognormal", "straggler"]
        assert regs["arrivals"] == ["burst", "poisson", "trace"]
        assert payload["platform"]["processors"] == 10
        assert payload["platform"]["speedup_bound"] == pytest.approx(7.6)

    def test_text_mode_lists_online_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "policies" in out
        assert "ready-dispatch" in out
