"""Engine behavior: determinism, contention validity, policy reactions."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.graphs import lu_graph
from repro.online import (
    Job,
    OnlineEngine,
    Workload,
    check_execution,
    make_workload,
    simulate_online,
)

POLICIES = [
    "static",
    "periodic:period=300",
    "reactive:threshold=0.05",
    "ready-dispatch",
]

NOISES = ["exact", "lognormal:sigma=0.3", "straggler:prob=0.1,factor=4"]


@pytest.fixture(scope="module")
def contended_workload():
    return make_workload("lu", 8, count=6, arrival="poisson:rate=0.005", seed=3)


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_identical_seeds_identical_runs(self, policy, paper_platform,
                                            contended_workload):
        """Event logs and metrics are bit-identical across repeat runs."""
        runs = [
            simulate_online(contended_workload, paper_platform, policy=policy,
                            noise="lognormal:sigma=0.3", seed=7)
            for _ in range(2)
        ]
        assert runs[0].event_log == runs[1].event_log
        assert runs[0].jobs == runs[1].jobs
        assert runs[0].placements == runs[1].placements
        assert sorted(runs[0].transfers) == sorted(runs[1].transfers)
        assert runs[0].utilization == runs[1].utilization

    def test_noise_is_per_activity_not_per_event_order(self, paper_platform):
        """An activity's actual duration depends only on (seed, job,
        activity), so two policies observe the same luck for the work
        they both execute in the same placement."""
        wl = make_workload("fork-join", 6, count=1, arrival="trace:0.0", seed=0)
        a = simulate_online(wl, paper_platform, policy="static",
                            noise="lognormal:sigma=0.4", seed=11)
        b = simulate_online(wl, paper_platform, policy="periodic:period=1e9",
                            noise="lognormal:sigma=0.4", seed=11)
        dur_a = {t: f - s for t, _p, s, f in a.placements[0]}
        dur_b = {t: f - s for t, _p, s, f in b.placements[0]}
        assert dur_a == dur_b

    def test_seed_changes_change_durations(self, paper_platform):
        wl = make_workload("fork-join", 6, count=1, arrival="trace:0.0", seed=0)
        a = simulate_online(wl, paper_platform, noise="lognormal:sigma=0.4", seed=1)
        b = simulate_online(wl, paper_platform, noise="lognormal:sigma=0.4", seed=2)
        assert a.jobs[0].completion != b.jobs[0].completion


class TestContention:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("noise", NOISES)
    def test_execution_always_valid(self, policy, noise, paper_platform,
                                    contended_workload):
        """Multi-job contention never violates compute or port
        exclusivity, precedence, or release causality."""
        result = simulate_online(contended_workload, paper_platform,
                                 policy=policy, noise=noise, seed=7)
        check_execution(result)
        assert all(j.completion >= j.arrival for j in result.jobs)
        assert result.events > 0

    def test_simultaneous_burst_arrivals(self, paper_platform):
        wl = make_workload("fork-join", 6, count=6, arrival="burst:size=3,gap=50",
                           seed=0)
        for policy in POLICIES:
            result = simulate_online(wl, paper_platform, policy=policy, seed=0)
            check_execution(result)

    def test_contended_stream_is_serialized(self, paper_platform):
        """Two identical jobs at t=0 cannot both finish in one job's
        standalone makespan (they share the platform)."""
        g = lu_graph(8)
        wl = Workload([Job(0, "a", g, 0.0), Job(1, "b", g, 0.0)])
        solo = simulate_online(
            Workload([Job(0, "solo", g, 0.0)]), paper_platform, policy="static",
            seed=0,
        )
        both = simulate_online(wl, paper_platform, policy="static", seed=0)
        check_execution(both)
        solo_ms = solo.jobs[0].completion
        assert max(j.completion for j in both.jobs) > solo_ms
        # ... but the engine still interleaves rather than fully
        # serializing: better than one-after-the-other
        assert max(j.completion for j in both.jobs) < 2 * solo_ms


class TestReactions:
    def test_periodic_replans(self, paper_platform, contended_workload):
        result = simulate_online(contended_workload, paper_platform,
                                 policy="periodic:period=200",
                                 noise="lognormal:sigma=0.3", seed=7)
        check_execution(result)
        assert sum(j.reschedules for j in result.jobs) > 0

    def test_reactive_replans_only_under_noise(self, paper_platform,
                                               contended_workload):
        quiet = simulate_online(contended_workload, paper_platform,
                                policy="reactive:threshold=0.05", seed=7)
        noisy = simulate_online(contended_workload, paper_platform,
                                policy="reactive:threshold=0.05",
                                noise="straggler:prob=0.2,factor=6", seed=7)
        check_execution(quiet)
        check_execution(noisy)
        assert sum(j.reschedules for j in quiet.jobs) == 0
        assert sum(j.reschedules for j in noisy.jobs) > 0

    def test_replanning_through_pinned_interior_tasks(self, paper_platform):
        """Regression: movability must be transitively closed.

        With in-flight transfers pinning interior tasks, a naive
        "not started and no started input" movable set hands the
        heuristic a subgraph missing dependencies that route through
        pinned tasks; the sub-plan's processor orders then contradict
        real precedence and the simulation deadlocks.  This workload
        (heavy stragglers, tight reactive threshold, deep LU chains)
        reproduced the hang before the transitive-closure fix.
        """
        wl = make_workload("lu", 14, count=6, arrival="poisson:rate=0.003",
                           seed=0)
        for policy in ["reactive:threshold=0.03", "periodic:period=120"]:
            result = simulate_online(wl, paper_platform, policy=policy,
                                     noise="straggler:prob=0.15,factor=8",
                                     seed=0, log_events=False)
            check_execution(result)
            assert sum(j.reschedules for j in result.jobs) > 0

    def test_reactive_threshold_monotone(self, paper_platform,
                                         contended_workload):
        """A looser threshold can only reduce replan triggers."""
        tight = simulate_online(contended_workload, paper_platform,
                                policy="reactive:threshold=0.02",
                                noise="lognormal:sigma=0.4", seed=7)
        loose = simulate_online(contended_workload, paper_platform,
                                policy="reactive:threshold=10.0",
                                noise="lognormal:sigma=0.4", seed=7)
        assert sum(j.reschedules for j in loose.jobs) == 0
        assert (sum(j.reschedules for j in tight.jobs)
                >= sum(j.reschedules for j in loose.jobs))


class TestEngineApi:
    def test_result_metrics_shape(self, paper_platform):
        wl = make_workload("lu", 8, count=3, arrival="poisson:rate=0.01", seed=1)
        result = simulate_online(wl, paper_platform, policy="static", seed=1)
        agg = result.aggregate()
        assert agg["jobs"] == 3
        assert agg["tasks"] == sum(j.tasks for j in result.jobs)
        for j in result.jobs:
            assert j.flow == j.completion - j.arrival
            assert j.weighted_flow == j.weight * j.flow
            assert j.stretch >= 1.0  # flow can never beat the lower bound
            assert j.makespan <= j.flow
        assert 0.0 < result.utilization <= 1.0

    def test_job_weights_flow_into_weighted_flow(self, paper_platform):
        wl = make_workload("fork-join", 6, count=4, arrival="burst:size=2,gap=100",
                           seed=0, weights=[1.0, 3.0])
        result = simulate_online(wl, paper_platform, policy="static", seed=0)
        assert result.aggregate()["weighted_flow"] == pytest.approx(
            sum(j.weight * j.flow for j in result.jobs)
        )
        assert {j.weight for j in result.jobs} == {1.0, 3.0}

    def test_engine_reusable_across_runs(self, paper_platform):
        engine = OnlineEngine(paper_platform, "static", seed=0)
        wl = make_workload("fork-join", 6, count=2, arrival="burst:size=2,gap=0",
                           seed=0)
        a = engine.run(wl)
        b = engine.run(wl)
        assert a.event_log == b.event_log

    def test_bad_policy_spec_rejected(self, paper_platform):
        with pytest.raises(ConfigurationError):
            OnlineEngine(paper_platform, "nonsense")
        with pytest.raises(ConfigurationError):
            OnlineEngine(paper_platform, "periodic:period=-5")
        with pytest.raises(ConfigurationError):
            OnlineEngine(paper_platform, "reactive:threshold=0")

    def test_macro_dataflow_plan_runs_under_one_port(self, paper_platform):
        """A macro-dataflow plan books transfers assuming unlimited port
        overlap; the engine executes it anyway, serializing the ports —
        the execution is one-port valid and no faster than the plan."""
        from repro.online import StaticPolicy
        from repro.simulate import replay_schedule

        wl = make_workload("lu", 6, count=1, arrival="trace:0.0", seed=0)
        graph = wl.jobs[0].graph
        alloc = {v: i % 3 for i, v in enumerate(graph.tasks())}
        policy = StaticPolicy(
            heuristic="fixed",
            heuristic_kwargs={"alloc": alloc},
            model="macro-dataflow",
        )
        result = simulate_online(wl, paper_platform, policy=policy, seed=0)
        check_execution(result)  # one-port exclusivity holds regardless
        plan = policy.scheduler.run(graph, paper_platform, "macro-dataflow")
        least = replay_schedule(plan)
        assert result.jobs[0].completion >= least.makespan()
