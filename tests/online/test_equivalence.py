"""Online/offline equivalence: the acceptance property of the engine.

With zero noise, a single job arriving at ``t = 0``, and the ``static``
policy, the event-driven execution must reproduce the replayed
(least-solution) times of the planning heuristic's schedule *bit for
bit* — same floats, no tolerance — for every registered heuristic and
for the variant one-port models (same style as
``tests/kernel/test_crosscheck.py``).
"""

import pytest

from repro.graphs import irregular_testbed, layered_testbed, lu_graph
from repro.heuristics import HEFT, available_schedulers, get_scheduler
from repro.models import NoOverlapOnePortModel, UniPortModel
from repro.online import (
    Job,
    StaticPolicy,
    Workload,
    check_execution,
    simulate_online,
)
from repro.simulate import replay_schedule

TESTBEDS = {
    "lu": lambda: lu_graph(8),
    "layered": lambda: layered_testbed(5, seed=7),
    "irregular": lambda: irregular_testbed(40, seed=3),
}

#: Constructor overrides for schedulers that need arguments; ``None``
#: marks schedulers excluded from the sweep (fixed needs a per-graph
#: allocation and is exercised separately below).
SCHEDULER_KWARGS = {
    "fixed": None,
    "ils": {"budget": 60, "seed": 1},
    "ilha": {"b": 4},
}


def single_job(graph) -> Workload:
    return Workload([Job(0, "job", graph, 0.0)])


def assert_engine_matches_replay(graph, platform, schedule, policy):
    """Engine times under zero noise == replay() of the same plan."""
    ref = replay_schedule(schedule)
    result = simulate_online(
        single_job(graph), platform, policy=policy, noise="exact", seed=0
    )
    check_execution(result)
    got = result.schedule_of(0)
    for v in graph.tasks():
        assert got.proc_of(v) == ref.proc_of(v), f"proc drift on {v!r}"
        assert got.start_of(v) == ref.start_of(v), f"start drift on {v!r}"
        assert got.finish_of(v) == ref.finish_of(v), f"finish drift on {v!r}"
    assert sorted(got.comm_events) == sorted(ref.comm_events)
    assert got.makespan() == ref.makespan()
    # engine-side metrics agree with the schedule-level view
    (job,) = result.jobs
    assert job.completion == ref.makespan()
    assert job.flow == ref.makespan()


@pytest.mark.parametrize("testbed", sorted(TESTBEDS))
@pytest.mark.parametrize("name", [n for n in available_schedulers()
                                  if SCHEDULER_KWARGS.get(n, {}) is not None])
def test_engine_matches_replay_for_every_heuristic(name, testbed, paper_platform):
    graph = TESTBEDS[testbed]()
    kwargs = SCHEDULER_KWARGS.get(name, {})
    schedule = get_scheduler(name, **kwargs).run(graph, paper_platform, "one-port")
    policy = StaticPolicy(heuristic=name, heuristic_kwargs=kwargs)
    assert_engine_matches_replay(graph, paper_platform, schedule, policy)


@pytest.mark.parametrize("testbed", sorted(TESTBEDS))
@pytest.mark.parametrize("model_cls", [NoOverlapOnePortModel, UniPortModel])
def test_engine_matches_replay_for_variant_models(model_cls, testbed, paper_platform):
    """Variant one-port models produce differently-ordered decision
    sets; the engine executes them open loop and must still land on the
    replayed least solution exactly."""
    graph = TESTBEDS[testbed]()
    model = model_cls(paper_platform)
    schedule = HEFT().run(graph, paper_platform, model)
    policy = StaticPolicy(heuristic="heft", model=model_cls(paper_platform))
    assert_engine_matches_replay(graph, paper_platform, schedule, policy)


def test_fixed_allocation_equivalence(paper_platform):
    graph = lu_graph(6)
    alloc = {v: i % 3 for i, v in enumerate(graph.tasks())}
    schedule = get_scheduler("fixed", alloc=alloc).run(
        graph, paper_platform, "one-port"
    )
    policy = StaticPolicy(heuristic="fixed", heuristic_kwargs={"alloc": alloc})
    assert_engine_matches_replay(graph, paper_platform, schedule, policy)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(3))
def test_equivalence_fuzz_large(seed, paper_platform):
    """Bigger seeded testbeds (excluded from tier-1)."""
    graph = irregular_testbed(300, seed=seed)
    for name, kwargs in (("heft", {}), ("ilha", {"b": 8})):
        schedule = get_scheduler(name, **kwargs).run(graph, paper_platform, "one-port")
        policy = StaticPolicy(heuristic=name, heuristic_kwargs=kwargs)
        assert_engine_matches_replay(graph, paper_platform, schedule, policy)
