"""Arrival processes and noise models: seeding, shapes, spec parsing."""

import random

import pytest

from repro.core.exceptions import ConfigurationError
from repro.online import (
    available_arrivals,
    available_noise_models,
    make_arrivals,
    make_noise,
    make_workload,
)


class TestArrivals:
    def test_registry(self):
        assert available_arrivals() == ["burst", "poisson", "trace"]

    def test_poisson_seeded_and_sorted(self):
        a = make_arrivals("poisson:rate=0.01", 20, seed=4)
        b = make_arrivals("poisson:rate=0.01", 20, seed=4)
        c = make_arrivals("poisson:rate=0.01", 20, seed=5)
        assert a == b
        assert a != c
        assert a == sorted(a)
        assert len(a) == 20
        assert all(t >= 0 for t in a)

    def test_poisson_rate_scales_span(self):
        slow = make_arrivals("poisson:rate=0.001", 50, seed=0)
        fast = make_arrivals("poisson:rate=0.1", 50, seed=0)
        assert fast[-1] < slow[-1]

    def test_poisson_positional_shorthand(self):
        assert make_arrivals("poisson:0.01", 5, seed=1) == make_arrivals(
            "poisson:rate=0.01", 5, seed=1
        )

    def test_burst_pattern(self):
        times = make_arrivals("burst:size=3,gap=100", 7, seed=0)
        assert times == [0.0, 0.0, 0.0, 100.0, 100.0, 100.0, 200.0]

    def test_trace_explicit_and_recycled(self):
        assert make_arrivals("trace:0,50,125", 3) == [0.0, 50.0, 125.0]
        recycled = make_arrivals("trace:0,50,125", 5)
        assert recycled[:3] == [0.0, 50.0, 125.0]
        assert recycled[3:] == [125.0, 175.0]  # shifted by the trace span

    def test_dict_specs(self):
        assert make_arrivals({"kind": "burst", "size": 2, "gap": 10}, 4) == [
            0.0, 0.0, 10.0, 10.0,
        ]

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "poisson:rate=0",
        "poisson:rate=-1",
        "burst:size=0",
        "burst:gap=-1",
        "poisson:frequency=3",
        "trace:-5,0",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            make_arrivals(bad, 5)


class TestNoise:
    def test_registry(self):
        assert available_noise_models() == ["exact", "lognormal", "straggler"]

    def test_exact_identity(self):
        noise = make_noise("exact")
        assert noise.exact
        assert noise.draw(42.0, random.Random(0)) == 42.0

    def test_lognormal_positive_and_seeded(self):
        noise = make_noise("lognormal:sigma=0.4")
        draws = [noise.draw(10.0, random.Random(i)) for i in range(200)]
        assert all(d > 0 for d in draws)
        assert draws != [10.0] * 200
        assert draws == [noise.draw(10.0, random.Random(i)) for i in range(200)]
        # mean-preserving parameterization: the sample mean is near the
        # estimate (loose bound; 200 draws of a sigma=0.4 lognormal)
        assert 8.0 < sum(draws) / len(draws) < 12.0

    def test_lognormal_zero_sigma_is_exact(self):
        noise = make_noise("lognormal:sigma=0")
        assert noise.draw(7.0, random.Random(3)) == 7.0

    def test_straggler_tail(self):
        noise = make_noise("straggler:prob=1.0,factor=10,sigma=0")
        assert noise.draw(5.0, random.Random(0)) == pytest.approx(50.0)
        calm = make_noise("straggler:prob=0.0,factor=10,sigma=0")
        assert calm.draw(5.0, random.Random(0)) == 5.0

    def test_positional_shorthand(self):
        assert make_noise("lognormal:0.3").sigma == 0.3
        assert make_noise({"name": "straggler", "prob": 0.5}).prob == 0.5

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "lognormal:sigma=-1",
        "straggler:prob=1.5",
        "straggler:factor=0.5",
        "lognormal:scale=2",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            make_noise(bad)


class TestWorkload:
    def test_shared_graph_by_default(self):
        wl = make_workload("lu", 6, count=4, arrival="burst:size=4,gap=0", seed=0)
        assert len(wl) == 4
        assert len({id(j.graph) for j in wl}) == 1
        assert [j.index for j in wl] == [0, 1, 2, 3]

    def test_vary_graphs_for_seeded_testbeds(self):
        wl = make_workload("irregular", 20, count=3, arrival="burst:size=3,gap=0",
                           seed=1, vary_graphs=True)
        assert len({id(j.graph) for j in wl}) == 3

    def test_vary_graphs_rejected_for_deterministic(self):
        with pytest.raises(ConfigurationError):
            make_workload("lu", 6, count=2, vary_graphs=True)

    def test_weights_cycle(self):
        wl = make_workload("fork-join", 4, count=4, arrival="burst:size=4,gap=0",
                           weights=[1.0, 2.0])
        assert [j.weight for j in wl] == [1.0, 2.0, 1.0, 2.0]

    def test_jobs_sorted_by_arrival(self):
        wl = make_workload("fork-join", 4, count=8, arrival="poisson:rate=0.01",
                           seed=9)
        arrivals = [j.arrival for j in wl]
        assert arrivals == sorted(arrivals)
