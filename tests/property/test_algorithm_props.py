"""Property-based tests for load balancing, ranking, and exact solvers."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complexity import (
    jackson_remote_makespan,
    optimal_fork_makespan,
    two_partition,
)
from repro.complexity.exact_fork import remote_makespan_for_order
from repro.core import (
    Platform,
    bottom_levels,
    distribution_makespan,
    optimal_distribution,
    top_levels,
    weight_shares,
)
from repro.graphs import layered_random

cycle_time_lists = st.lists(
    st.sampled_from([1.0, 2.0, 3.0, 5.0, 6.0, 10.0, 15.0]), min_size=1, max_size=4
)


class TestLoadBalanceProps:
    @given(cycle_time_lists)
    def test_shares_sum_to_one(self, cts):
        assert abs(sum(weight_shares(cts)) - 1.0) < 1e-9

    @given(cycle_time_lists, st.integers(min_value=0, max_value=12))
    def test_distribution_total(self, cts, n):
        assert sum(optimal_distribution(n, cts)) == n

    @given(
        st.lists(st.sampled_from([1.0, 2.0, 3.0]), min_size=2, max_size=3),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_distribution_minimizes_makespan(self, cts, n):
        greedy = distribution_makespan(optimal_distribution(n, cts), cts)
        best = min(
            distribution_makespan(counts, cts)
            for counts in itertools.product(range(n + 1), repeat=len(cts))
            if sum(counts) == n
        )
        assert abs(greedy - best) < 1e-9

    @given(cycle_time_lists, st.integers(min_value=1, max_value=20))
    def test_faster_processors_never_get_less(self, cts, n):
        counts = optimal_distribution(n, cts)
        for i in range(len(cts)):
            for j in range(len(cts)):
                if cts[i] < cts[j]:
                    assert counts[i] >= counts[j]


class TestRankingProps:
    graph_params = st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=500),
    )

    @given(graph_params)
    @settings(max_examples=60)
    def test_bottom_level_decreases_along_edges(self, gp):
        layers, width, seed = gp
        g = layered_random(layers, width, density=0.6, seed=seed)
        plat = Platform([6.0, 10.0, 15.0])
        bl = bottom_levels(g, plat)
        for u, v in g.edges():
            assert bl[u] > bl[v] - 1e-9

    @given(graph_params)
    @settings(max_examples=60)
    def test_top_plus_bottom_bounded_by_cp(self, gp):
        layers, width, seed = gp
        g = layered_random(layers, width, density=0.6, seed=seed)
        plat = Platform([6.0, 10.0, 15.0])
        bl = bottom_levels(g, plat)
        tl = top_levels(g, plat)
        cp = max(bl.values())
        for v in g.tasks():
            assert tl[v] + bl[v] <= cp + 1e-6


class TestExactForkProps:
    jobs = st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=1,
        max_size=5,
    )

    @given(jobs)
    @settings(max_examples=80)
    def test_jackson_is_optimal_order(self, jobs):
        jobs = [(float(s), float(t)) for s, t in jobs]
        best = min(
            remote_makespan_for_order(jobs, order)
            for order in itertools.permutations(range(len(jobs)))
        )
        assert abs(jackson_remote_makespan(jobs) - best) < 1e-9

    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60)
    def test_optimum_no_worse_than_any_subset(self, weights, w0):
        w = [float(x) for x in weights]
        exact, _ = optimal_fork_makespan(float(w0), w, w)
        # spot-check a few specific subsets
        from repro.complexity import fork_makespan_for_subset

        for mask in range(min(1 << len(w), 16)):
            local = {i for i in range(len(w)) if mask >> i & 1}
            assert exact <= fork_makespan_for_subset(float(w0), w, w, local) + 1e-9


class TestPartitionProps:
    @given(st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=10))
    @settings(max_examples=100)
    def test_two_partition_sound(self, values):
        side = two_partition(values)
        if side is not None:
            assert 2 * sum(values[i] for i in side) == sum(values)

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=8))
    @settings(max_examples=80)
    def test_two_partition_complete(self, values):
        """If brute force finds a partition, the DP must too."""
        total = sum(values)
        brute = False
        if total % 2 == 0:
            for mask in range(1 << len(values)):
                if sum(values[i] for i in range(len(values)) if mask >> i & 1) == total // 2:
                    brute = True
                    break
        assert (two_partition(values) is not None) == brute
