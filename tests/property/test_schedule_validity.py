"""The central property: every heuristic emits valid schedules.

Hypothesis generates random layered DAGs and random heterogeneous
platforms; every registered scheduler must produce a schedule that the
independent validator accepts, that is complete, and whose makespan
respects the work/critical-path lower bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HEFT, ILHA, Platform, validate_schedule
from repro.core import makespan_lower_bound
from repro.graphs import layered_random
from repro.heuristics import BIL, CPOP, GDL, PCT, MaxMin, MinMin, RandomMapper

# keep graphs small: validity is about structure, not scale
graph_params = st.tuples(
    st.integers(min_value=1, max_value=5),   # layers
    st.integers(min_value=1, max_value=4),   # width
    st.floats(min_value=0.0, max_value=1.0), # density
    st.integers(min_value=0, max_value=10_000),  # seed
)

platform_params = st.tuples(
    st.integers(min_value=1, max_value=5),               # processors
    st.lists(st.sampled_from([1.0, 2.0, 3.0, 6.0, 10.0]), min_size=5, max_size=5),
    st.sampled_from([0.5, 1.0, 4.0]),                    # link cost
)


def make_platform(params) -> Platform:
    p, speeds, link = params
    return Platform(speeds[:p], link)


def make_graph(params):
    layers, width, density, seed = params
    return layered_random(layers, width, density=density, seed=seed)


SCHEDULERS = [
    HEFT(),
    HEFT(insertion=False),
    ILHA(b=3),
    ILHA(b=8, single_comm_scan=True),
    ILHA(b=5, reschedule=True),
    ILHA(b=4, budget="weights"),
    CPOP(),
    GDL(),
    BIL(),
    PCT(),
    MinMin(),
    MaxMin(),
    RandomMapper(seed=13),
]


@given(graph_params, platform_params, st.sampled_from(range(len(SCHEDULERS))))
@settings(max_examples=120, deadline=None)
def test_one_port_schedules_always_valid(gp, pp, scheduler_idx):
    graph = make_graph(gp)
    platform = make_platform(pp)
    scheduler = SCHEDULERS[scheduler_idx]
    sched = scheduler.run(graph, platform, "one-port")
    validate_schedule(sched)
    assert sched.is_complete()
    assert sched.makespan() >= makespan_lower_bound(graph, platform) - 1e-6


@given(graph_params, platform_params, st.sampled_from(range(len(SCHEDULERS))))
@settings(max_examples=60, deadline=None)
def test_macro_schedules_always_valid(gp, pp, scheduler_idx):
    graph = make_graph(gp)
    platform = make_platform(pp)
    scheduler = SCHEDULERS[scheduler_idx]
    sched = scheduler.run(graph, platform, "macro-dataflow")
    validate_schedule(sched)
    assert sched.is_complete()
    assert sched.makespan() >= makespan_lower_bound(graph, platform) - 1e-6


@given(graph_params, platform_params)
@settings(max_examples=40, deadline=None)
def test_heuristics_deterministic(gp, pp):
    graph = make_graph(gp)
    platform = make_platform(pp)
    a = HEFT().run(graph, platform, "one-port")
    b = HEFT().run(graph, platform, "one-port")
    assert a.makespan() == b.makespan()
    assert {t: a.proc_of(t) for t in graph.tasks()} == {
        t: b.proc_of(t) for t in graph.tasks()
    }


@given(graph_params, platform_params, st.sampled_from(range(len(SCHEDULERS))))
@settings(max_examples=60, deadline=None)
def test_replay_reconstruction_no_worse(gp, pp, scheduler_idx):
    """Independent timing reconstruction: replaying any heuristic's
    decisions yields a valid schedule with makespan <= the original."""
    from repro.simulate import replay_schedule

    graph = make_graph(gp)
    platform = make_platform(pp)
    original = SCHEDULERS[scheduler_idx].run(graph, platform, "one-port")
    replayed = replay_schedule(original)
    validate_schedule(replayed)
    assert replayed.makespan() <= original.makespan() + 1e-6
    for t in graph.tasks():
        assert replayed.proc_of(t) == original.proc_of(t)


@given(graph_params, platform_params)
@settings(max_examples=40, deadline=None)
def test_one_port_events_cover_every_remote_edge(gp, pp):
    graph = make_graph(gp)
    platform = make_platform(pp)
    sched = ILHA(b=4).run(graph, platform, "one-port")
    for u, v in graph.edges():
        events = sched.comms_between((u, v))
        if sched.proc_of(u) == sched.proc_of(v):
            assert events == []
        else:
            assert len(events) == 1
            assert events[0].data == graph.data(u, v)
