"""Timeline substrate vs a brute-force free-list oracle.

The oracle keeps the busy set as a plain list of intervals and answers
"earliest fit" by scanning every candidate start (the ready time and
each interval end) — O(n²) and obviously correct.  Every fast-path
operation (:meth:`Timeline.next_fit`, :meth:`TimelineOverlay.next_fit`,
:func:`earliest_joint_fit`) must agree with it exactly, under both
hypothesis-driven cases and longer seeded random fuzz runs; and
:meth:`TimelineOverlay.commit` must replay its tentative reservations
onto the base losslessly, tags included.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Timeline, TimelineOverlay, earliest_joint_fit
from repro.core.exceptions import TimelineError

# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------


def oracle_next_fit(busy, ready, duration):
    """Brute-force earliest t >= ready with [t, t+duration) free.

    ``busy`` is any list of (start, end) pairs (need not be sorted or
    disjoint).  Candidate starts are ``ready`` and every interval end;
    the earliest candidate that overlaps nothing is the answer (any
    feasible start can be slid left onto one of these candidates).
    """
    if duration == 0:
        return ready
    candidates = sorted({ready} | {e for _, e in busy if e > ready})
    for t in candidates:
        if all(t + duration <= s or t >= e for s, e in busy):
            return t
    raise AssertionError("unreachable: past the last end everything fits")


def fill(timeline, reqs):
    """Reserve each request at its next_fit position (what heuristics do)."""
    for ready, duration in reqs:
        start = timeline.next_fit(ready, duration)
        timeline.reserve(start, start + duration)


# Durations are 0 or >= 0.01: a denormal duration d with t + d == t is
# an *empty* window in float semantics — the oracle accepts it inside a
# busy interval while the fast path (correctly) skips past, so such
# degenerate inputs have no well-defined "earliest fit" to agree on.
durations = st.one_of(
    st.just(0.0), st.floats(min_value=0.01, max_value=8.0, allow_nan=False)
)
requests = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=40.0, allow_nan=False), durations),
    min_size=0,
    max_size=20,
)
probe = st.tuples(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False), durations
)


# ----------------------------------------------------------------------
# hypothesis properties
# ----------------------------------------------------------------------


@given(requests, probe)
def test_timeline_next_fit_matches_oracle(reqs, query):
    t = Timeline()
    fill(t, reqs)
    busy = [(s, e) for s, e, _ in t.intervals()]
    ready, duration = query
    assert t.next_fit(ready, duration) == oracle_next_fit(busy, ready, duration)


@given(requests, requests, probe)
def test_overlay_next_fit_matches_oracle(base_reqs, local_reqs, query):
    base = Timeline()
    fill(base, base_reqs)
    ov = TimelineOverlay(base)
    for ready, duration in local_reqs:
        start = ov.next_fit(ready, duration)
        ov.reserve(start, start + duration)
    busy = [(s, e) for s, e, _ in base.intervals()]
    busy += [(s, e) for s, e, _ in ov.added()]
    ready, duration = query
    assert ov.next_fit(ready, duration) == oracle_next_fit(busy, ready, duration)


@given(requests, requests, requests, probe)
def test_joint_fit_matches_oracle(reqs_a, reqs_b, reqs_c, query):
    views = []
    busy = []
    for reqs in (reqs_a, reqs_b, reqs_c):
        t = Timeline()
        fill(t, reqs)
        views.append(t)
        busy += [(s, e) for s, e, _ in t.intervals()]
    ready, duration = query
    # free on ALL views == free against the union of their busy sets
    assert earliest_joint_fit(views, ready, duration) == oracle_next_fit(
        busy, ready, duration
    )


@given(requests, requests)
def test_commit_replays_overlay_losslessly(base_reqs, local_reqs):
    """After commit, the base holds exactly base + tentative intervals,
    tags included, and the overlay is drained."""
    base = Timeline()
    for i, (ready, duration) in enumerate(base_reqs):
        start = base.next_fit(ready, duration)
        base.reserve(start, start + duration, ("base", i))
    ov = TimelineOverlay(base)
    tentative = []
    for i, (ready, duration) in enumerate(local_reqs):
        start = ov.next_fit(ready, duration)
        ov.reserve(start, start + duration, ("ov", i))
        if duration > 0:
            tentative.append((start, start + duration, ("ov", i)))

    before = base.intervals()
    ov.commit()
    assert ov.added() == []
    assert sorted(base.intervals()) == sorted(before + tentative)
    # committing booked real reservations: re-reserving any tentative
    # window must now fail on the base itself
    for s, e, _ in tentative:
        with pytest.raises(TimelineError):
            base.reserve(s, e)


# ----------------------------------------------------------------------
# seeded random fuzzing: longer mixed op-sequences per seed
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_timeline_and_overlay_against_oracle(seed):
    rng = random.Random(seed)
    base = Timeline()
    busy_base = []
    for _ in range(120):
        ready = rng.uniform(0, 60)
        duration = rng.choice([0.0, rng.uniform(0.01, 6), rng.uniform(0.01, 0.5)])
        got = base.next_fit(ready, duration)
        assert got == oracle_next_fit(busy_base, ready, duration)
        if rng.random() < 0.6:
            base.reserve(got, got + duration)
            if duration > 0:
                busy_base.append((got, got + duration))

        # a fresh overlay probe against the union every few steps
        if rng.random() < 0.25:
            ov = TimelineOverlay(base)
            busy_all = list(busy_base)
            for _ in range(rng.randrange(4)):
                r = rng.uniform(0, 60)
                d = rng.uniform(0.01, 4)
                s = ov.next_fit(r, d)
                assert s == oracle_next_fit(busy_all, r, d)
                ov.reserve(s, s + d)
                if d > 0:
                    busy_all.append((s, s + d))


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_joint_fit_against_union_oracle(seed):
    rng = random.Random(1000 + seed)
    views = [Timeline() for _ in range(rng.randrange(1, 5))]
    busy = []
    for _ in range(60):
        view = rng.choice(views)
        ready = rng.uniform(0, 40)
        duration = rng.uniform(0.01, 5)
        start = view.next_fit(ready, duration)
        view.reserve(start, start + duration)
        busy.append((start, start + duration))
        r = rng.uniform(0, 50)
        d = rng.uniform(0.01, 6)
        assert earliest_joint_fit(views, r, d) == oracle_next_fit(busy, r, d)


def test_overlay_reserve_rejects_nan():
    """The overlay guards NaN endpoints exactly like the base timeline
    (a NaN tentative reservation must not corrupt the sorted invariant)."""
    nan = float("nan")
    base = Timeline()
    ov = TimelineOverlay(base)
    for bad in ((nan, 1.0), (0.0, nan), (nan, nan)):
        with pytest.raises(TimelineError):
            ov.reserve(*bad)
    # the overlay is untouched and still consistent
    assert ov.added() == []
    ov.reserve(0.0, 1.0)
    ov.reserve(2.0, 3.0)
    assert ov.next_fit(0.0, 1.0) == 1.0
