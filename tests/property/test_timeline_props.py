"""Property-based tests for the timeline substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Timeline, TimelineOverlay, earliest_joint_fit

# Reservation requests as (ready, duration) pairs with small magnitudes
# so intervals frequently interact.
requests = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


def fill(timeline, reqs):
    """Reserve each request at its next_fit position (what heuristics do)."""
    placed = []
    for ready, duration in reqs:
        start = timeline.next_fit(ready, duration)
        timeline.reserve(start, start + duration, None)
        placed.append((start, start + duration))
    return placed


@given(requests)
def test_reservations_stay_disjoint(reqs):
    t = Timeline()
    fill(t, reqs)
    intervals = t.intervals()
    for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
        assert e1 <= s2 + 1e-9


@given(requests)
def test_next_fit_never_before_ready(reqs):
    t = Timeline()
    for ready, duration in reqs:
        start = t.next_fit(ready, duration)
        assert start >= ready
        t.reserve(start, start + duration)


@given(requests, st.floats(min_value=0.0, max_value=60.0), st.floats(min_value=0.0, max_value=10.0))
def test_next_fit_window_is_actually_free(reqs, ready, duration):
    t = Timeline()
    fill(t, reqs)
    start = t.next_fit(ready, duration)
    assert t.is_free(start, start + duration)


@given(requests, st.floats(min_value=0.0, max_value=60.0), st.floats(min_value=0.01, max_value=10.0))
def test_next_fit_is_earliest(reqs, ready, duration):
    """No free window of the same size starts earlier (sampled check via
    the gap list, which is an independent computation)."""
    t = Timeline()
    fill(t, reqs)
    start = t.next_fit(ready, duration)
    horizon = start + duration + 1.0
    for gap_start, gap_end in t.gaps(horizon):
        candidate = max(gap_start, ready)
        if candidate + duration <= gap_end:
            assert start <= candidate + 1e-9
            break


@given(requests)
def test_busy_time_equals_sum_of_durations(reqs):
    t = Timeline()
    placed = fill(t, reqs)
    expected = sum(e - s for s, e in placed)
    assert abs(t.busy_time() - expected) <= 1e-9 * max(1.0, expected)


@given(requests, requests)
def test_overlay_commit_equivalent_to_direct(base_reqs, overlay_reqs):
    """Filling through an overlay then committing gives the same busy set
    as filling the base directly."""
    direct = Timeline()
    fill(direct, base_reqs)
    fill(direct, overlay_reqs)

    base = Timeline()
    fill(base, base_reqs)
    ov = TimelineOverlay(base)
    for ready, duration in overlay_reqs:
        start = ov.next_fit(ready, duration)
        ov.reserve(start, start + duration)
    ov.commit()

    assert [(s, e) for s, e, _ in base.intervals()] == [
        (s, e) for s, e, _ in direct.intervals()
    ]


@given(requests, requests, st.floats(min_value=0.0, max_value=40.0), st.floats(min_value=0.0, max_value=8.0))
@settings(max_examples=60)
def test_joint_fit_free_on_all_views(reqs_a, reqs_b, ready, duration):
    a, b = Timeline(), Timeline()
    fill(a, reqs_a)
    fill(b, reqs_b)
    start = earliest_joint_fit([a, b], ready, duration)
    assert start >= ready
    assert a.is_free(start, start + duration)
    assert b.is_free(start, start + duration)
