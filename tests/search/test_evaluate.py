"""Cross-checks of the incremental evaluator against full replay.

Acceptance criterion: the incremental evaluator agrees with a full
``replay()`` of the mutated decision set on every accepted move.
"""

import random

import pytest

from repro import HEFT, ILHA
from repro.graphs import fork_join_graph, irregular_testbed, layered_testbed, lu_graph
from repro.search import IncrementalEvaluator, MoveTask, SearchPoint, propose
from repro.simulate import replay

GRAPHS = {
    "lu": lu_graph(6),
    "fork-join": fork_join_graph(8),
    "layered": layered_testbed(5, seed=3),
    "irregular": irregular_testbed(40, seed=1),
}

TOL = 1e-9


def loaded_evaluator(graph, platform, scheduler=None):
    sched = (scheduler or HEFT()).run(graph, platform, "one-port")
    evaluator = IncrementalEvaluator(graph, platform)
    evaluator.load(SearchPoint.from_schedule(sched))
    return evaluator


class TestLoad:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_load_equals_full_replay(self, name, paper_platform):
        graph = GRAPHS[name]
        evaluator = loaded_evaluator(graph, paper_platform)
        sched = replay(
            graph,
            paper_platform,
            evaluator.point.to_decisions(paper_platform.processors),
        )
        assert evaluator.makespan == pytest.approx(sched.makespan(), abs=TOL)
        evaluator.cross_check()


class TestPreviewCrossCheck:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_previews_match_full_replay(self, name, paper_platform):
        """Every previewed move — accepted or not — agrees with a from-
        scratch replay of the mutated decisions."""
        graph = GRAPHS[name]
        evaluator = loaded_evaluator(graph, paper_platform)
        rng = random.Random(23)
        checked = 0
        for _ in range(40):
            move = propose(evaluator.point, paper_platform, rng)
            if move is None:
                continue
            preview = evaluator.preview(move)
            full = replay(
                graph,
                paper_platform,
                preview.point.to_decisions(paper_platform.processors),
            )
            assert preview.makespan == pytest.approx(full.makespan(), abs=TOL)
            checked += 1
        assert checked >= 25

    def test_preview_leaves_base_state_untouched(self, paper_platform):
        graph = GRAPHS["lu"]
        evaluator = loaded_evaluator(graph, paper_platform)
        before = evaluator.makespan
        point_before = evaluator.point
        rng = random.Random(1)
        for _ in range(10):
            move = propose(evaluator.point, paper_platform, rng)
            if move is not None:
                evaluator.preview(move)
        assert evaluator.makespan == before
        assert evaluator.point is point_before
        evaluator.cross_check()

    def test_localizing_and_remoting_an_edge(self, paper_platform):
        """Targeted check of transfer-node removal and creation."""
        graph = GRAPHS["lu"]
        evaluator = loaded_evaluator(graph, paper_platform)
        u, v = next(iter(evaluator.point.remote_edges()))
        # make the edge local ...
        localize = MoveTask(v, evaluator.point.alloc[u])
        preview = evaluator.preview(localize)
        full = replay(
            graph,
            paper_platform,
            preview.point.to_decisions(paper_platform.processors),
        )
        assert preview.makespan == pytest.approx(full.makespan(), abs=TOL)
        evaluator.commit(preview)
        evaluator.cross_check()
        # ... and remote again
        other = (evaluator.point.alloc[u] + 1) % paper_platform.num_processors
        preview = evaluator.preview(MoveTask(v, other))
        full = replay(
            graph,
            paper_platform,
            preview.point.to_decisions(paper_platform.processors),
        )
        assert preview.makespan == pytest.approx(full.makespan(), abs=TOL)
        evaluator.commit(preview)
        evaluator.cross_check()


class TestCommit:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_accepted_moves_agree_with_replay(self, name, paper_platform):
        """A seeded walk where EVERY accepted move is cross-checked
        against full replay — per-task starts included.  Acceptance is
        deliberately lenient (<= +10%) so plenty of moves commit even on
        testbeds where random moves rarely improve a tight schedule."""
        graph = GRAPHS[name]
        evaluator = loaded_evaluator(graph, paper_platform)
        rng = random.Random(42)
        accepted = 0
        for _ in range(60):
            move = propose(evaluator.point, paper_platform, rng)
            if move is None:
                continue
            preview = evaluator.preview(move)
            if preview.makespan <= evaluator.makespan * 1.10:
                evaluator.commit(preview)
                evaluator.cross_check()  # raises on any drift
                accepted += 1
        assert accepted >= 5

    def test_commit_chain_matches_fresh_load(self, paper_platform):
        """After a long random commit chain, the patched state equals a
        from-scratch load of the final point."""
        graph = GRAPHS["irregular"]
        evaluator = loaded_evaluator(graph, paper_platform)
        rng = random.Random(9)
        for _ in range(40):
            move = propose(evaluator.point, paper_platform, rng)
            if move is None:
                continue
            evaluator.commit(evaluator.preview(move))
        fresh = IncrementalEvaluator(graph, paper_platform)
        fresh_ms = fresh.load(evaluator.point)
        assert evaluator.makespan == pytest.approx(fresh_ms, abs=TOL)
        for node, finish in fresh._finish.items():
            assert evaluator._finish[node] == pytest.approx(finish, abs=TOL)
        assert set(evaluator._finish) == set(fresh._finish)

    @pytest.mark.slow
    def test_long_fuzz_commit_every_move(self, paper_platform):
        """Commit 300 unconditional random moves on two testbeds,
        cross-checking each (excluded from tier-1)."""
        for name in ("layered", "irregular"):
            evaluator = loaded_evaluator(GRAPHS[name], paper_platform, ILHA(b=4))
            rng = random.Random(1234)
            for _ in range(300):
                move = propose(evaluator.point, paper_platform, rng)
                if move is None:
                    continue
                evaluator.commit(evaluator.preview(move))
                evaluator.cross_check()


class TestCriticalPath:
    def test_chain_starts_at_makespan_and_is_connected(self, paper_platform):
        graph = GRAPHS["layered"]
        evaluator = loaded_evaluator(graph, paper_platform)
        chain = evaluator.critical_path_tasks()
        assert chain
        first = ("task", chain[0])
        assert evaluator._finish[first] == pytest.approx(evaluator.makespan)
        # the chain is monotone: each later entry finishes no later
        finishes = [evaluator._finish[("task", t)] for t in chain]
        assert finishes == sorted(finishes, reverse=True)
