"""Tests for the iterated-local-search scheduler (``ils``).

Acceptance criteria covered here:

* ``ils(heft)`` with a fixed seed is deterministic — identical
  makespans across runs and across campaign worker counts;
* it never returns a worse makespan than its base heuristic on any
  testbed in the suite;
* it strictly improves the makespan on at least 3 of the seeded
  layered/irregular random-DAG testbeds.
"""

import pytest

from repro import HEFT, ILHA, validate_schedule
from repro.core.exceptions import ConfigurationError
from repro.graphs import (
    doolittle_graph,
    fork_join_graph,
    irregular_testbed,
    laplace_graph,
    layered_testbed,
    lu_graph,
    stencil_graph,
)
from repro.heuristics import IteratedLocalSearch, available_schedulers, get_scheduler

TOL = 1e-6

#: The seeded random-DAG testbeds of the improvement criterion.
SEEDED_CASES = [
    ("layered", layered_testbed(8, seed=0)),
    ("layered", layered_testbed(8, seed=1)),
    ("layered", layered_testbed(8, seed=2)),
    ("irregular", irregular_testbed(60, seed=0)),
    ("irregular", irregular_testbed(60, seed=1)),
    ("irregular", irregular_testbed(80, seed=2)),
]

#: One small graph per testbed family, for the never-worse sweep.
SUITE = {
    "lu": lu_graph(8),
    "laplace": laplace_graph(6),
    "stencil": stencil_graph(6),
    "fork-join": fork_join_graph(12),
    "doolittle": doolittle_graph(6),
    "layered": layered_testbed(6, seed=4),
    "irregular": irregular_testbed(50, seed=5),
}


class TestRegistry:
    def test_registered_as_ils(self):
        assert "ils" in available_schedulers()
        scheduler = get_scheduler("ils", base="heft", budget=10)
        assert isinstance(scheduler, IteratedLocalSearch)

    def test_cannot_wrap_itself(self):
        with pytest.raises(ConfigurationError, match="wrap itself"):
            IteratedLocalSearch(base="ils")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            IteratedLocalSearch(budget=-1)
        with pytest.raises(ConfigurationError):
            IteratedLocalSearch(kick=-2)
        with pytest.raises(ConfigurationError):
            IteratedLocalSearch(sideways=1.5)

    def test_requires_one_port_model(self, paper_platform):
        with pytest.raises(ConfigurationError, match="one-port"):
            IteratedLocalSearch(budget=10).run(
                SUITE["lu"], paper_platform, "macro-dataflow"
            )


class TestDeterminism:
    def test_same_seed_same_schedule(self, paper_platform):
        graph = layered_testbed(8, seed=2)
        first = IteratedLocalSearch(base="heft", budget=1200, seed=7).run(
            graph, paper_platform, "one-port"
        )
        second = IteratedLocalSearch(base="heft", budget=1200, seed=7).run(
            graph, paper_platform, "one-port"
        )
        assert first.makespan() == second.makespan()
        assert first.search_stats == second.search_stats
        for task in graph.tasks():
            assert first.start_of(task) == second.start_of(task)
            assert first.proc_of(task) == second.proc_of(task)

    def test_different_seeds_may_differ_but_stay_bounded(self, paper_platform):
        graph = irregular_testbed(60, seed=1)
        base_ms = HEFT().run(graph, paper_platform, "one-port").makespan()
        for seed in (0, 1, 2):
            out = IteratedLocalSearch(base="heft", budget=600, seed=seed).run(
                graph, paper_platform, "one-port"
            )
            assert out.makespan() <= base_ms + TOL

    def test_identical_across_campaign_worker_counts(self, tmp_path):
        """The acceptance-criterion form: one ils grid, 1 worker vs a
        pool vs a warm cache — identical metrics everywhere."""
        from repro.campaign import CampaignSpec, HeuristicSpec, ResultCache, run_campaign

        spec = CampaignSpec(
            name="ils-det",
            testbeds=["irregular"],
            sizes=[30],
            seeds=[0, 1],
            heuristics=[HeuristicSpec.of("heft")],
            improve=[None, {"budget": 300, "seed": 7}],
        )
        serial = run_campaign(spec, workers=1)
        pooled = run_campaign(spec, workers=2, cache=ResultCache(tmp_path))
        warm = run_campaign(spec, workers=2, cache=ResultCache(tmp_path))
        assert warm.cache_hits == len(warm.outcomes)

        def metrics(result):
            return [
                (o.cell.key, o.result.makespan, o.result.num_comms)
                for o in result.outcomes
            ]

        assert metrics(serial) == metrics(pooled) == metrics(warm)


class TestNeverWorse:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_ils_heft_never_worse(self, name, paper_platform):
        graph = SUITE[name]
        base_ms = HEFT().run(graph, paper_platform, "one-port").makespan()
        out = IteratedLocalSearch(base="heft", budget=600, seed=0).run(
            graph, paper_platform, "one-port"
        )
        validate_schedule(out)
        assert out.is_complete()
        assert out.makespan() <= base_ms + TOL

    @pytest.mark.parametrize("name", ["lu", "layered"])
    def test_ils_ilha_never_worse(self, name, paper_platform):
        graph = SUITE[name]
        base_ms = ILHA(b=8).run(graph, paper_platform, "one-port").makespan()
        out = IteratedLocalSearch(
            base="ilha", base_kwargs={"b": 8}, budget=600, seed=0
        ).run(graph, paper_platform, "one-port")
        validate_schedule(out)
        assert out.makespan() <= base_ms + TOL
        assert out.heuristic == "ils(ilha(b=8))"

    def test_zero_budget_returns_tightened_base(self, paper_platform):
        graph = SUITE["lu"]
        base_ms = HEFT().run(graph, paper_platform, "one-port").makespan()
        out = IteratedLocalSearch(base="heft", budget=0).run(
            graph, paper_platform, "one-port"
        )
        assert out.makespan() <= base_ms + TOL
        assert out.search_stats["evals"] == 0
        assert out.heuristic == "ils(heft)"


class TestImprovement:
    def test_strictly_improves_seeded_random_testbeds(self, paper_platform):
        """Acceptance criterion: strict improvement over HEFT on at
        least 3 of the seeded layered/irregular testbeds."""
        improved = 0
        for _, graph in SEEDED_CASES:
            base_ms = HEFT().run(graph, paper_platform, "one-port").makespan()
            out = IteratedLocalSearch(base="heft", budget=4000, seed=0).run(
                graph, paper_platform, "one-port"
            )
            validate_schedule(out)
            assert out.makespan() <= base_ms + TOL
            if out.makespan() < base_ms - TOL:
                improved += 1
        assert improved >= 3

    def test_budget_is_respected(self, paper_platform):
        out = IteratedLocalSearch(base="heft", budget=250, seed=0).run(
            SUITE["irregular"], paper_platform, "one-port"
        )
        assert out.search_stats["evals"] <= 250

    def test_stats_are_coherent(self, paper_platform):
        out = IteratedLocalSearch(base="heft", budget=400, seed=0).run(
            SUITE["layered"], paper_platform, "one-port"
        )
        stats = out.search_stats
        assert stats["final_makespan"] == pytest.approx(out.makespan())
        assert stats["tightened_makespan"] <= stats["base_makespan"] + TOL
        assert stats["final_makespan"] <= stats["tightened_makespan"] + TOL
        assert stats["accepted"] + stats["kicks"] <= stats["evals"]

    @pytest.mark.slow
    def test_paranoia_mode_full_search(self, paper_platform):
        """A full search with per-accept replay cross-checks (slow)."""
        out = IteratedLocalSearch(
            base="heft", budget=2000, seed=0, paranoia=True
        ).run(irregular_testbed(60, seed=1), paper_platform, "one-port")
        validate_schedule(out)
