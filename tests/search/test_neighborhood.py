"""Property tests for the move neighborhood.

The central property (an acceptance criterion of the search subsystem):
every move the generator produces maps a feasible point to a feasible
point — replay never sees a cycle, and the replayed schedule passes the
independent one-port validator.
"""

import random

import pytest

from repro import HEFT, validate_schedule
from repro.graphs import (
    fork_join_graph,
    irregular_testbed,
    layered_random,
    layered_testbed,
    lu_graph,
)
from repro.search import (
    AdjacentExchange,
    MoveTask,
    Reposition,
    SearchPoint,
    SwapTasks,
    propose,
)
from repro.search.neighborhood import invalidated
from repro.simulate import replay

GRAPHS = {
    "lu": lu_graph(6),
    "fork-join": fork_join_graph(8),
    "layered": layered_testbed(5, seed=3),
    "irregular": irregular_testbed(40, seed=1),
}


def start_point(graph, platform):
    return SearchPoint.from_schedule(HEFT().run(graph, platform, "one-port"))


class TestEveryGeneratedMoveIsFeasible:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_single_moves_replay_valid(self, name, paper_platform):
        graph = GRAPHS[name]
        point = start_point(graph, paper_platform)
        rng = random.Random(7)
        checked = 0
        for _ in range(60):
            move = propose(point, paper_platform, rng)
            if move is None:
                continue
            new = move.apply(point)
            new.check()  # sequence stays topological
            sched = replay(
                graph, paper_platform, new.to_decisions(paper_platform.processors)
            )
            validate_schedule(sched)
            checked += 1
        assert checked >= 40  # the generator rarely comes up empty

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_random_walk_stays_feasible(self, name, paper_platform):
        """Feasibility is closed under composition: a 30-move walk never
        leaves the space of valid decision sets."""
        graph = GRAPHS[name]
        point = start_point(graph, paper_platform)
        rng = random.Random(11)
        for _ in range(30):
            move = propose(point, paper_platform, rng)
            if move is None:
                continue
            point = move.apply(point)
        sched = replay(
            graph, paper_platform, point.to_decisions(paper_platform.processors)
        )
        validate_schedule(sched)
        assert sched.is_complete()

    @pytest.mark.slow
    def test_moves_on_random_layered_graphs(self, paper_platform):
        """Long fuzz over many seeded graphs (excluded from tier-1)."""
        for graph_seed in range(12):
            graph = layered_random(6, 5, density=0.5, seed=graph_seed)
            point = start_point(graph, paper_platform)
            rng = random.Random(graph_seed)
            for _ in range(80):
                move = propose(point, paper_platform, rng)
                if move is None:
                    continue
                point = move.apply(point)
                validate_schedule(
                    replay(
                        graph,
                        paper_platform,
                        point.to_decisions(paper_platform.processors),
                    )
                )


class TestMoveSemantics:
    def test_move_task_changes_only_that_allocation(self, paper_platform):
        graph = GRAPHS["lu"]
        point = start_point(graph, paper_platform)
        task = point.sequence[3]
        target = (point.alloc[task] + 1) % paper_platform.num_processors
        new = MoveTask(task, target).apply(point)
        assert new.alloc[task] == target
        assert new.sequence == point.sequence
        assert all(new.alloc[t] == point.alloc[t] for t in point.sequence if t != task)

    def test_swap_exchanges_processors(self, paper_platform):
        graph = GRAPHS["lu"]
        point = start_point(graph, paper_platform)
        a, b = next(
            (x, y)
            for x in point.sequence
            for y in point.sequence
            if point.alloc[x] != point.alloc[y]
        )
        new = SwapTasks(a, b).apply(point)
        assert new.alloc[a] == point.alloc[b]
        assert new.alloc[b] == point.alloc[a]

    def test_adjacent_exchange_swaps_proc_order_entries(self, paper_platform):
        graph = GRAPHS["irregular"]
        point = start_point(graph, paper_platform)
        rng = random.Random(3)
        for _ in range(200):
            proc = rng.randrange(paper_platform.num_processors)
            order = point.proc_list(proc)
            if len(order) < 2:
                continue
            index = rng.randrange(len(order) - 1)
            move = AdjacentExchange("proc", proc, index)
            if move.resolve(point) is None:
                continue
            new = move.apply(point)
            new_order = new.proc_list(proc)
            assert new_order[index] == order[index + 1]
            assert new_order[index + 1] == order[index]
            return
        pytest.fail("no feasible proc exchange found")

    @pytest.mark.parametrize("kind", ["send", "recv"])
    def test_adjacent_exchange_swaps_port_entries(self, kind, paper_platform):
        graph = GRAPHS["layered"]
        point = start_point(graph, paper_platform)
        rng = random.Random(5)
        for _ in range(400):
            proc = rng.randrange(paper_platform.num_processors)
            order = point.resource_list(kind, proc)
            if len(order) < 2:
                continue
            index = rng.randrange(len(order) - 1)
            move = AdjacentExchange(kind, proc, index)
            if move.resolve(point) is None:
                continue
            new = move.apply(point)
            new_order = new.resource_list(kind, proc)
            assert new_order.index(order[index + 1]) < new_order.index(order[index])
            return
        pytest.fail(f"no feasible {kind} exchange found")

    def test_infeasible_reposition_rejected(self, paper_platform):
        """Pulling a task before one of its predecessors must refuse."""
        graph = GRAPHS["lu"]
        point = start_point(graph, paper_platform)
        preds = graph.as_maps().preds
        task = next(t for t in point.sequence if preds[t])
        parent = preds[task][0]
        move = Reposition(task, parent)
        assert not move.feasible(point)
        with pytest.raises(Exception, match="topological"):
            move.apply(point)


class TestInvalidation:
    def test_moved_task_is_dirty(self, paper_platform):
        graph = GRAPHS["lu"]
        point = start_point(graph, paper_platform)
        task = point.sequence[4]
        target = (point.alloc[task] + 1) % paper_platform.num_processors
        move = MoveTask(task, target)
        dirty, removed = move.invalidates(point)
        assert ("task", task) in dirty
        assert not (dirty & removed)

    def test_localized_edge_is_removed(self, paper_platform):
        graph = GRAPHS["lu"]
        point = start_point(graph, paper_platform)
        u, v = next(iter(point.remote_edges()))
        move = MoveTask(v, point.alloc[u])
        dirty, removed = move.invalidates(point)
        assert ("comm", u, v, 0) in removed
        assert ("task", v) in dirty

    def test_invalidation_matches_full_diff(self, paper_platform):
        """Nodes NOT reported dirty/removed keep their predecessor lists
        — checked against a brute-force diff of both constraint DAGs."""
        from repro.search import IncrementalEvaluator

        graph = GRAPHS["layered"]
        point = start_point(graph, paper_platform)
        rng = random.Random(17)
        base = IncrementalEvaluator(graph, paper_platform)
        base.load(point)
        for _ in range(25):
            move = propose(point, paper_platform, rng)
            if move is None:
                continue
            new = move.apply(point)
            dirty, removed, _ = invalidated(point, new, move.touched(point))
            fresh = IncrementalEvaluator(graph, paper_platform)
            fresh.load(new)
            untouched = set(base._preds) - dirty - removed
            for node in untouched:
                assert sorted(map(str, base._preds[node])) == sorted(
                    map(str, fresh._preds[node])
                ), f"undeclared change at {node} after {move}"
