"""Tests for the search-space representation (SearchPoint)."""

import pytest

from repro import HEFT, ILHA, validate_schedule
from repro.core import SchedulingError
from repro.graphs import irregular_testbed, layered_testbed, lu_graph, toy_graph
from repro.heuristics import CPOP
from repro.search import SearchPoint
from repro.simulate import replay

GRAPHS = {
    "lu": lu_graph(6),
    "toy": toy_graph(),
    "layered": layered_testbed(5, seed=3),
    "irregular": irregular_testbed(40, seed=1),
}


class TestFromSchedule:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_sequence_is_topological_and_complete(self, name, paper_platform):
        graph = GRAPHS[name]
        sched = HEFT().run(graph, paper_platform, "one-port")
        point = SearchPoint.from_schedule(sched)
        assert len(point.sequence) == graph.num_tasks
        point.check()  # raises unless topological

    def test_alloc_matches_schedule(self, paper_platform):
        graph = GRAPHS["lu"]
        sched = ILHA(b=4).run(graph, paper_platform, "one-port")
        point = SearchPoint.from_schedule(sched)
        for task in graph.tasks():
            assert point.alloc[task] == sched.proc_of(task)

    def test_partial_schedule_rejected(self, paper_platform):
        graph = GRAPHS["lu"]
        sched = HEFT().run(graph, paper_platform, "one-port")
        del sched.placements[next(iter(sched.placements))]
        with pytest.raises(SchedulingError, match="partial"):
            SearchPoint.from_schedule(sched)


class TestDerivedOrders:
    def test_proc_lists_partition_tasks(self, paper_platform):
        graph = GRAPHS["irregular"]
        point = SearchPoint.from_schedule(
            HEFT().run(graph, paper_platform, "one-port")
        )
        seen = []
        for p in paper_platform.processors:
            row = point.proc_list(p)
            assert all(point.alloc[t] == p for t in row)
            seen.extend(row)
        assert sorted(map(str, seen)) == sorted(map(str, graph.tasks()))

    def test_port_lists_cover_remote_edges(self, paper_platform):
        graph = GRAPHS["layered"]
        point = SearchPoint.from_schedule(
            HEFT().run(graph, paper_platform, "one-port")
        )
        remote = set(point.remote_edges())
        sent = {
            (u, v)
            for p in paper_platform.processors
            for (u, v, _) in point.send_list(p)
        }
        received = {
            (u, v)
            for p in paper_platform.processors
            for (u, v, _) in point.recv_list(p)
        }
        assert sent == remote == received

    def test_port_lists_sorted_by_consumer_key(self, paper_platform):
        graph = GRAPHS["layered"]
        point = SearchPoint.from_schedule(
            HEFT().run(graph, paper_platform, "one-port")
        )
        for p in paper_platform.processors:
            for order in (point.send_list(p), point.recv_list(p)):
                keys = [(point.pos[v], point.pos[u]) for (u, v, _) in order]
                assert keys == sorted(keys)

    def test_key_orders_every_constraint_edge(self, paper_platform):
        """The global key proves feasibility: transfers sit strictly
        after their source task and before their consumer."""
        graph = GRAPHS["irregular"]
        point = SearchPoint.from_schedule(
            HEFT().run(graph, paper_platform, "one-port")
        )
        for u, v in point.remote_edges():
            node = ("comm", u, v, 0)
            assert point.key(("task", u)) < point.key(node) < point.key(("task", v))


class TestToDecisions:
    @pytest.mark.parametrize("scheduler", [HEFT(), ILHA(b=4), CPOP()], ids=lambda s: s.name)
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_canonical_decisions_replay_valid(self, scheduler, name, paper_platform):
        """Any point extracted from any heuristic replays into a valid,
        complete one-port schedule — feasibility by construction."""
        graph = GRAPHS[name]
        sched = scheduler.run(graph, paper_platform, "one-port")
        point = SearchPoint.from_schedule(sched)
        replayed = replay(
            graph, paper_platform, point.to_decisions(paper_platform.processors)
        )
        validate_schedule(replayed)
        assert replayed.is_complete()

    def test_decisions_preserve_allocation(self, paper_platform):
        graph = GRAPHS["lu"]
        sched = HEFT().run(graph, paper_platform, "one-port")
        point = SearchPoint.from_schedule(sched)
        decisions = point.to_decisions(paper_platform.processors)
        assert decisions.alloc == point.alloc
        assert set(decisions.hops) == {(u, v, 0) for u, v in point.remote_edges()}
