"""Unit tests for the analysis package (stats + bottleneck attribution)."""

import pytest

from repro import HEFT, ILHA, Platform, Serial
from repro.analysis import (
    bottleneck_report,
    comm_matrix,
    compare_schedules,
    idle_profile,
    port_busy_times,
    processor_profile,
    scheduled_critical_path,
)
from repro.graphs import lu_graph, stencil_graph, uniform_fork


@pytest.fixture
def lu_schedule(paper_platform):
    return HEFT().run(lu_graph(8), paper_platform, "one-port")


class TestStats:
    def test_processor_profile_consistent(self, lu_schedule):
        profile = processor_profile(lu_schedule)
        ms = lu_schedule.makespan()
        for proc, row in profile.items():
            assert row["busy"] + row["idle"] == pytest.approx(ms)
            assert row["busy"] == pytest.approx(lu_schedule.proc_busy_time(proc))

    def test_idle_profile_bounds(self, lu_schedule):
        prof = idle_profile(lu_schedule)
        assert 0.0 <= prof["min_utilization"] <= prof["mean_utilization"]
        assert prof["mean_utilization"] <= prof["max_utilization"] <= 1.0

    def test_port_busy_totals(self, lu_schedule):
        ports = port_busy_times(lu_schedule)
        total_send = sum(row["send"] for row in ports.values())
        total_recv = sum(row["recv"] for row in ports.values())
        assert total_send == pytest.approx(lu_schedule.total_comm_time())
        assert total_recv == pytest.approx(lu_schedule.total_comm_time())

    def test_comm_matrix_diagonal_zero(self, lu_schedule):
        mat = comm_matrix(lu_schedule)
        assert mat.shape == (10, 10)
        assert mat.diagonal().sum() == 0.0
        assert mat.sum() == pytest.approx(lu_schedule.total_comm_time())

    def test_compare_schedules_renders(self, paper_platform):
        g = lu_graph(6)
        table = compare_schedules(
            [HEFT().run(g, paper_platform), ILHA(b=4).run(g, paper_platform)]
        )
        assert "heft" in table
        assert "ilha" in table
        assert len(table.splitlines()) == 4


class TestBottleneck:
    def test_chain_covers_makespan_for_serial(self, paper_platform):
        """A serial schedule's chain is pure back-to-back computation."""
        sched = Serial().run(lu_graph(5), paper_platform, "one-port")
        report = bottleneck_report(sched)
        assert report["comm"] == 0.0
        assert report["compute"] == pytest.approx(sched.makespan())
        assert report["gap"] == pytest.approx(0.0)

    def test_chain_ends_at_makespan(self, lu_schedule):
        chain = scheduled_critical_path(lu_schedule)
        assert chain[-1].finish == pytest.approx(lu_schedule.makespan())

    def test_chain_is_time_ordered_and_tight(self, lu_schedule):
        chain = scheduled_critical_path(lu_schedule)
        for a, b in zip(chain, chain[1:]):
            assert a.finish == pytest.approx(b.start, abs=1e-6)

    def test_fork_chain_shows_serialized_sends(self, five_identical):
        """With every child remote, the chain is the send-port queue."""
        from repro import FixedAllocation

        alloc = {"v0": 0} | {f"v{i}": 1 + (i - 1) % 4 for i in range(1, 7)}
        sched = FixedAllocation(alloc).run(uniform_fork(6), five_identical, "one-port")
        chain = scheduled_critical_path(sched)
        comm_nodes = [n for n in chain if n.kind == "comm"]
        assert comm_nodes, "fork schedules are communication-bound"
        assert any("send port" in n.released_by or "arrival" in n.released_by
                   for n in chain)

    def test_stencil_is_comm_bound(self, paper_platform):
        """The paper's Figure 12 diagnosis, quantified: most of the
        stencil critical chain is communication."""
        sched = HEFT().run(stencil_graph(8), paper_platform, "one-port")
        report = bottleneck_report(sched)
        assert report["comm_fraction"] > 0.5

    def test_empty_schedule(self, paper_platform):
        from repro.core import Schedule, TaskGraph

        sched = Schedule(TaskGraph(), paper_platform)
        assert scheduled_critical_path(sched) == []
