"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "speedup bound     : 7.60" in out
        assert "perfect balance B : 38" in out


class TestSchedule:
    def test_default(self, capsys):
        assert main(["schedule", "--testbed", "lu", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "speedup" in out

    def test_with_gantt(self, capsys):
        assert main([
            "schedule", "--testbed", "fork-join", "--size", "5",
            "--heuristic", "heft", "--gantt", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "P0" in out

    def test_ilha_b_flag(self, capsys):
        assert main([
            "schedule", "--testbed", "lu", "--size", "6",
            "--heuristic", "ilha", "--b", "4",
        ]) == 0

    def test_macro_model(self, capsys):
        assert main([
            "schedule", "--testbed", "laplace", "--size", "4",
            "--model", "macro-dataflow",
        ]) == 0
        assert "macro-dataflow" in capsys.readouterr().out


class TestFigures:
    def test_single_figure_small(self, capsys):
        assert main(["figures", "--figures", "fig07", "--sizes", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "== fig07 ==" in out
        assert "gain%" in out


class TestCompare:
    def test_baselines_table(self, capsys):
        assert main(["compare", "--testbed", "lu", "--size", "6"]) == 0
        out = capsys.readouterr().out
        for name in ("pct", "cpop", "heft"):
            assert name in out


class TestBottleneck:
    def test_chain_printed(self, capsys):
        assert main([
            "bottleneck", "--testbed", "stencil", "--size", "6",
            "--heuristic", "heft",
        ]) == 0
        out = capsys.readouterr().out
        assert "critical chain" in out
        assert "comm fraction" in out

    def test_bad_args_exit(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--testbed", "not-a-testbed"])


class TestSearch:
    def test_forkjoin_smoke(self, capsys):
        """The CI smoke invocation, alias spelling included."""
        assert main([
            "search", "--graph", "forkjoin", "--base", "heft", "--budget", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "ils" in out
        assert "200" in out  # budget echoed in the counters

    def test_seeded_testbed_with_base_kwargs(self, capsys):
        assert main([
            "search", "--graph", "irregular", "--size", "30",
            "--graph-seed", "1", "--base", "ilha:b=8", "--budget", "150",
        ]) == 0
        out = capsys.readouterr().out
        assert "ilha(b=8)" in out

    def test_gantt(self, capsys):
        assert main([
            "search", "--graph", "fork-join", "--size", "5",
            "--budget", "50", "--gantt", "40",
        ]) == 0
        assert "P0" in capsys.readouterr().out

    def test_bad_graph_and_base_exit_cleanly(self):
        with pytest.raises(SystemExit):
            main(["search", "--graph", "not-a-testbed"])
        with pytest.raises(SystemExit):
            main(["search", "--graph", "lu", "--size", "5", "--base", "bogus"])
        with pytest.raises(SystemExit):  # ils cannot wrap itself
            main(["search", "--graph", "lu", "--size", "5", "--base", "ils"])
        with pytest.raises(SystemExit):  # unknown base kwarg
            main(["search", "--graph", "lu", "--size", "5", "--base", "heft:bogus=1"])


class TestCampaign:
    GRID = [
        "--testbeds", "fork-join", "irregular",
        "--sizes", "5", "8",
        "--heuristics", "heft", "ilha:b=8",
        "--seeds", "0", "1",
    ]

    def test_run_then_warm_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", *self.GRID, "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "0 cached" in out
        assert "== adhoc/fork-join ==" in out
        assert "== adhoc/irregular ==" in out

        assert main(["campaign", "run", *self.GRID, "--cache-dir", cache,
                     "--workers", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

    def test_status_and_export(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "status", *self.GRID, "--cache-dir", cache]) == 0
        assert "0 cached" in capsys.readouterr().out

        assert main(["campaign", "run", *self.GRID, "--cache-dir", cache,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", *self.GRID, "--cache-dir", cache]) == 0
        assert "0 to run" in capsys.readouterr().out

        out_csv = str(tmp_path / "cells.csv")
        assert main(["campaign", "export", *self.GRID, "--cache-dir", cache,
                     "--out", out_csv]) == 0
        assert "exported 12 cached cells" in capsys.readouterr().out
        from repro.experiments import read_csv

        cells = read_csv(out_csv)
        assert len(cells) == 12
        assert {c.testbed for c in cells} == {"fork-join", "irregular"}

    def test_spec_file_round_trip(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, HeuristicSpec

        spec = CampaignSpec(
            name="fromfile",
            testbeds=["lu"],
            sizes=[5],
            heuristics=[HeuristicSpec.of("heft")],
        )
        path = spec.to_json(tmp_path / "spec.json")
        assert main(["campaign", "run", "--spec", str(path),
                     "--cache-dir", str(tmp_path / "c"), "--quiet"]) == 0
        assert "campaign fromfile: 1 cells" in capsys.readouterr().out

    def test_improve_budget_sweep(self, capsys, tmp_path):
        """--improve-budgets expands an ils stage; 0 keeps the base."""
        grid = ["--testbeds", "irregular", "--sizes", "25",
                "--heuristics", "heft", "--seeds", "0",
                "--improve-budgets", "0", "100"]
        assert main(["campaign", "run", *grid,
                     "--cache-dir", str(tmp_path / "c"), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "ils(heft;budget=100,seed=0)" in out

    def test_export_json(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        grid = ["--testbeds", "lu", "--sizes", "5", "--heuristics", "heft"]
        assert main(["campaign", "run", *grid, "--cache-dir", cache, "--quiet",
                     "--export", str(tmp_path / "out.json")]) == 0
        from repro.experiments import read_json

        assert len(read_json(tmp_path / "out.json")) == 1
