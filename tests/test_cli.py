"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "speedup bound     : 7.60" in out
        assert "perfect balance B : 38" in out


class TestSchedule:
    def test_default(self, capsys):
        assert main(["schedule", "--testbed", "lu", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "speedup" in out

    def test_with_gantt(self, capsys):
        assert main([
            "schedule", "--testbed", "fork-join", "--size", "5",
            "--heuristic", "heft", "--gantt", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "P0" in out

    def test_ilha_b_flag(self, capsys):
        assert main([
            "schedule", "--testbed", "lu", "--size", "6",
            "--heuristic", "ilha", "--b", "4",
        ]) == 0

    def test_macro_model(self, capsys):
        assert main([
            "schedule", "--testbed", "laplace", "--size", "4",
            "--model", "macro-dataflow",
        ]) == 0
        assert "macro-dataflow" in capsys.readouterr().out


class TestFigures:
    def test_single_figure_small(self, capsys):
        assert main(["figures", "--figures", "fig07", "--sizes", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "== fig07 ==" in out
        assert "gain%" in out


class TestCompare:
    def test_baselines_table(self, capsys):
        assert main(["compare", "--testbed", "lu", "--size", "6"]) == 0
        out = capsys.readouterr().out
        for name in ("pct", "cpop", "heft"):
            assert name in out


class TestBottleneck:
    def test_chain_printed(self, capsys):
        assert main([
            "bottleneck", "--testbed", "stencil", "--size", "6",
            "--heuristic", "heft",
        ]) == 0
        out = capsys.readouterr().out
        assert "critical chain" in out
        assert "comm fraction" in out

    def test_bad_args_exit(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--testbed", "not-a-testbed"])
