"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "speedup bound     : 7.60" in out
        assert "perfect balance B : 38" in out


class TestSchedule:
    def test_default(self, capsys):
        assert main(["schedule", "--testbed", "lu", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "speedup" in out

    def test_with_gantt(self, capsys):
        assert main([
            "schedule", "--testbed", "fork-join", "--size", "5",
            "--heuristic", "heft", "--gantt", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "P0" in out

    def test_ilha_b_flag(self, capsys):
        assert main([
            "schedule", "--testbed", "lu", "--size", "6",
            "--heuristic", "ilha", "--b", "4",
        ]) == 0

    def test_macro_model(self, capsys):
        assert main([
            "schedule", "--testbed", "laplace", "--size", "4",
            "--model", "macro-dataflow",
        ]) == 0
        assert "macro-dataflow" in capsys.readouterr().out


class TestFigures:
    def test_single_figure_small(self, capsys):
        assert main(["figures", "--figures", "fig07", "--sizes", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "== fig07 ==" in out
        assert "gain%" in out


class TestCompare:
    def test_baselines_table(self, capsys):
        assert main(["compare", "--testbed", "lu", "--size", "6"]) == 0
        out = capsys.readouterr().out
        for name in ("pct", "cpop", "heft"):
            assert name in out


class TestBottleneck:
    def test_chain_printed(self, capsys):
        assert main([
            "bottleneck", "--testbed", "stencil", "--size", "6",
            "--heuristic", "heft",
        ]) == 0
        out = capsys.readouterr().out
        assert "critical chain" in out
        assert "comm fraction" in out

    def test_bad_args_exit(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--testbed", "not-a-testbed"])


class TestSearch:
    def test_forkjoin_smoke(self, capsys):
        """The CI smoke invocation, alias spelling included."""
        assert main([
            "search", "--graph", "forkjoin", "--base", "heft", "--budget", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "ils" in out
        assert "200" in out  # budget echoed in the counters

    def test_seeded_testbed_with_base_kwargs(self, capsys):
        assert main([
            "search", "--graph", "irregular", "--size", "30",
            "--graph-seed", "1", "--base", "ilha:b=8", "--budget", "150",
        ]) == 0
        out = capsys.readouterr().out
        assert "ilha(b=8)" in out

    def test_gantt(self, capsys):
        assert main([
            "search", "--graph", "fork-join", "--size", "5",
            "--budget", "50", "--gantt", "40",
        ]) == 0
        assert "P0" in capsys.readouterr().out

    def test_bad_graph_and_base_exit_cleanly(self):
        with pytest.raises(SystemExit):
            main(["search", "--graph", "not-a-testbed"])
        with pytest.raises(SystemExit):
            main(["search", "--graph", "lu", "--size", "5", "--base", "bogus"])
        with pytest.raises(SystemExit):  # ils cannot wrap itself
            main(["search", "--graph", "lu", "--size", "5", "--base", "ils"])
        with pytest.raises(SystemExit):  # unknown base kwarg
            main(["search", "--graph", "lu", "--size", "5", "--base", "heft:bogus=1"])


class TestCampaign:
    GRID = [
        "--testbeds", "fork-join", "irregular",
        "--sizes", "5", "8",
        "--heuristics", "heft", "ilha:b=8",
        "--seeds", "0", "1",
    ]

    def test_run_then_warm_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", *self.GRID, "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "0 cached" in out
        assert "== adhoc/fork-join ==" in out
        assert "== adhoc/irregular ==" in out

        assert main(["campaign", "run", *self.GRID, "--cache-dir", cache,
                     "--workers", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

    def test_status_and_export(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "status", *self.GRID, "--cache-dir", cache]) == 0
        assert "0 cached" in capsys.readouterr().out

        assert main(["campaign", "run", *self.GRID, "--cache-dir", cache,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", *self.GRID, "--cache-dir", cache]) == 0
        assert "0 to run" in capsys.readouterr().out

        out_csv = str(tmp_path / "cells.csv")
        assert main(["campaign", "export", *self.GRID, "--cache-dir", cache,
                     "--out", out_csv]) == 0
        assert "exported 12 cached cells" in capsys.readouterr().out
        from repro.experiments import read_csv

        cells = read_csv(out_csv)
        assert len(cells) == 12
        assert {c.testbed for c in cells} == {"fork-join", "irregular"}

    def test_spec_file_round_trip(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec, HeuristicSpec

        spec = CampaignSpec(
            name="fromfile",
            testbeds=["lu"],
            sizes=[5],
            heuristics=[HeuristicSpec.of("heft")],
        )
        path = spec.to_json(tmp_path / "spec.json")
        assert main(["campaign", "run", "--spec", str(path),
                     "--cache-dir", str(tmp_path / "c"), "--quiet"]) == 0
        assert "campaign fromfile: 1 cells" in capsys.readouterr().out

    def test_improve_budget_sweep(self, capsys, tmp_path):
        """--improve-budgets expands an ils stage; 0 keeps the base."""
        grid = ["--testbeds", "irregular", "--sizes", "25",
                "--heuristics", "heft", "--seeds", "0",
                "--improve-budgets", "0", "100"]
        assert main(["campaign", "run", *grid,
                     "--cache-dir", str(tmp_path / "c"), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "ils(heft;budget=100,seed=0)" in out

    def test_export_json(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        grid = ["--testbeds", "lu", "--sizes", "5", "--heuristics", "heft"]
        assert main(["campaign", "run", *grid, "--cache-dir", cache, "--quiet",
                     "--export", str(tmp_path / "out.json")]) == 0
        from repro.experiments import read_json

        assert len(read_json(tmp_path / "out.json")) == 1


class TestCampaignSpool:
    GRID = ["--testbeds", "fork-join", "--sizes", "5", "7",
            "--heuristics", "heft", "--seeds", "0"]

    def test_run_with_spool_executor(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        assert main(["campaign", "run", *self.GRID,
                     "--executor", "spool", "--spool-dir", spool,
                     "--cache-dir", str(tmp_path / "cache"), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out and "via spool" in out

    def test_worker_once_drains_a_prepublished_spool(self, capsys, tmp_path):
        """External worker lifecycle: a worker started with --once
        drains published tasks, then the parent adopts the done records
        (workers=0: it never executes anything itself)."""
        from repro.campaign import CampaignSpec, HeuristicSpec, Spool

        spool_dir = str(tmp_path / "spool")
        spec = CampaignSpec(name="adhoc", testbeds=["fork-join"],
                            sizes=[5, 7], heuristics=[HeuristicSpec.of("heft")])
        spool = Spool(spool_dir, create=True)
        seen = set()
        for cell in spec.expand():
            if cell.key not in seen:
                seen.add(cell.key)
                spool.publish(cell.task_payload())

        assert main(["campaign", "worker", spool_dir, "--once",
                     "--worker-id", "w-ext", "--quiet"]) == 0
        assert "worker w-ext: 2 cell(s) executed" in capsys.readouterr().out

        assert main(["campaign", "run", *self.GRID, "--executor", "spool",
                     "--spool-dir", spool_dir, "--workers", "0",
                     "--cache-dir", str(tmp_path / "cache"), "--quiet"]) == 0
        assert "2 executed" in capsys.readouterr().out

    def test_status_over_a_spool_dir(self, capsys, tmp_path):
        import json

        spool = str(tmp_path / "spool")
        assert main(["campaign", "run", *self.GRID, "--executor", "spool",
                     "--spool-dir", spool,
                     "--cache-dir", str(tmp_path / "cache"), "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--spool-dir", spool,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == 2 and payload["failed"] == []
        assert payload["pending"] == 0 and payload["leased"] == 0

        assert main(["campaign", "status", "--spool-dir", spool]) == 0
        assert "2 done" in capsys.readouterr().out

    def test_status_spec_json(self, capsys, tmp_path):
        import json

        cache = str(tmp_path / "cache")
        assert main(["campaign", "status", *self.GRID, "--cache-dir", cache,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unique"] == 2 and payload["cached"] == 0

    def test_cache_compact_and_merge(self, capsys, tmp_path):
        one, two = str(tmp_path / "one"), str(tmp_path / "two")
        assert main(["campaign", "run", *self.GRID, "--cache-dir", one,
                     "--quiet"]) == 0
        assert main(["campaign", "run", *self.GRID, "--cache-dir", one,
                     "--refresh", "--quiet"]) == 0  # superseded rows
        assert main(["campaign", "run", "--testbeds", "lu", "--sizes", "5",
                     "--heuristics", "heft", "--cache-dir", two,
                     "--quiet"]) == 0
        capsys.readouterr()

        assert main(["campaign", "cache", "compact", "--cache-dir", one]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s) kept" in out and "2 line(s) dropped" in out

        merged = str(tmp_path / "merged")
        assert main(["campaign", "cache", "merge", one, two,
                     "--out", merged]) == 0
        assert "3 cell(s) total, 3 new" in capsys.readouterr().out
        from repro.campaign import ResultCache

        assert len(ResultCache(merged)) == 3


class TestObsSurface:
    def test_info_json_has_obs_section(self, capsys):
        import json

        assert main(["info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["obs"]["enabled"] is False
        assert "builder.candidates" in payload["obs"]["metrics"]
        assert payload["obs"]["metrics"] == sorted(payload["obs"]["metrics"])

    def test_profile_prints_table(self, capsys):
        assert main(["--profile", "schedule", "--testbed", "lu",
                     "--size", "8", "--heuristic", "heft"]) == 0
        out = capsys.readouterr().out
        assert "-- profile" in out
        assert "builder.candidates" in out
        assert "phase.statics" in out

    def test_trace_static_schedule(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        out_path = tmp_path / "trace.json"
        assert main(["trace", "--testbed", "lu", "--size", "8",
                     "--heuristic", "heft", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote schedule trace" in out
        assert "perfetto" in out
        trace = json.loads(out_path.read_text())
        assert trace["metadata"]["view"] == "schedule"
        assert validate_trace(trace)["events"] > 0
        # the CLI collects phase spans even without --profile
        assert any(
            ev.get("name") == "phase.statics" for ev in trace["traceEvents"]
        )

    def test_trace_online(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        out_path = tmp_path / "online.json"
        assert main(["trace", "--online", "--testbed", "lu", "--size", "6",
                     "--jobs", "3", "--policy", "periodic:period=500",
                     "--out", str(out_path)]) == 0
        assert "wrote online trace" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        assert trace["metadata"]["view"] == "online"
        assert trace["metadata"]["jobs"] == 3
        validate_trace(trace)

    def test_trace_bad_heuristic_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--heuristic", "heft:bogus=1",
                  "--out", str(tmp_path / "t.json")])

    def test_campaign_metrics_export(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        grid = ["--testbeds", "lu", "--sizes", "5", "--heuristics", "heft"]
        assert main(["campaign", "run", *grid, "--no-cache", "--quiet",
                     "--metrics", str(metrics)]) == 0
        assert "wrote campaign metrics" in capsys.readouterr().out
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["campaign.cells"] == 1
        assert payload["counters"]["builder.commits"] > 0
        assert "phase.cell" in payload["timers"]


class TestObsJournalCli:
    GRID = ["--testbeds", "fork-join", "--sizes", "5", "7",
            "--heuristics", "heft", "--seeds", "0"]

    def run_spooled(self, tmp_path, capsys) -> str:
        spool = str(tmp_path / "spool")
        assert main(["campaign", "run", *self.GRID, "--executor", "spool",
                     "--spool-dir", spool,
                     "--cache-dir", str(tmp_path / "cache"), "--quiet"]) == 0
        capsys.readouterr()
        return spool

    def test_info_json_documents_the_journal(self, capsys):
        import json

        assert main(["info", "--json"]) == 0
        obs = json.loads(capsys.readouterr().out)["obs"]
        assert obs["log_env"] == "REPRO_LOG"
        assert obs["journal"]["filename"] == "journal.jsonl"
        assert obs["journal"]["schema_version"] == 1
        assert obs["export_formats"] == ["json", "prometheus"]

    def test_profile_prints_gauges_and_span_totals(self, capsys, tmp_path):
        assert main(["--profile", "campaign", "run", *self.GRID,
                     "--no-cache", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "gauges" in out and "campaign.workers" in out
        assert "spans" in out and "span(s)" in out

    def test_obs_trace_from_a_spool_journal(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        spool = self.run_spooled(tmp_path, capsys)
        out_path = tmp_path / "campaign-trace.json"
        assert main(["obs", "trace", "--journal", spool,
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote campaign trace" in out and "perfetto" in out
        trace = json.loads(out_path.read_text())
        assert trace["metadata"]["view"] == "campaign"
        assert trace["metadata"]["cells_done"] == 2
        assert len(trace["metadata"]["workers"]) == 1
        assert validate_trace(trace)["events"] > 0

    def test_obs_export_prometheus_from_a_journal(self, capsys, tmp_path):
        spool = self.run_spooled(tmp_path, capsys)
        assert main(["obs", "export", "--journal", spool,
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_journal_cells_done 2" in out
        assert "# TYPE repro_journal_cells_done gauge" in out

    def test_obs_export_json_summary(self, capsys, tmp_path):
        import json

        spool = self.run_spooled(tmp_path, capsys)
        assert main(["obs", "export", "--journal", spool,
                     "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["state"] == "finished"
        assert summary["cells"]["done"] == 2
        assert summary["lifecycle"]["completed"] == 2

    def test_obs_export_from_a_metrics_payload(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main(["campaign", "run", *self.GRID, "--no-cache", "--quiet",
                     "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["obs", "export", "--metrics", str(metrics),
                     "--format", "prometheus"]) == 0
        assert "repro_campaign_cells_total 2" in capsys.readouterr().out

    def test_obs_export_empty_journal_exits_1(self, capsys, tmp_path):
        assert main(["obs", "export", "--journal",
                     str(tmp_path / "nope.jsonl")]) == 1

    def test_status_watch_renders_a_finished_campaign(self, capsys, tmp_path):
        """Acceptance: --watch works from journal + spool dir alone,
        long after the campaign parent exited."""
        spool = self.run_spooled(tmp_path, capsys)
        assert main(["campaign", "status", "--spool-dir", spool,
                     "--watch"]) == 0
        out = capsys.readouterr().out
        assert "finished" in out and "2 done" in out

    def test_status_text_shows_worker_health(self, capsys, tmp_path):
        spool = self.run_spooled(tmp_path, capsys)
        assert main(["campaign", "status", "--spool-dir", spool]) == 0
        out = capsys.readouterr().out
        assert "workers" in out and "2 done" in out

    def test_metrics_interval_snapshots_while_running(self, capsys, tmp_path):
        from repro.obs import read_journal

        journal = tmp_path / "j.jsonl"
        # enough cells that the campaign comfortably outlives the first
        # 1ms snapshot tick
        grid = ["--testbeds", "lu", "--sizes", "10", "14", "18", "22",
                "--heuristics", "heft", "ilha:b=8"]
        assert main(["campaign", "run", *grid, "--no-cache", "--quiet",
                     "--journal", str(journal),
                     "--metrics-interval", "0.001"]) == 0
        records = read_journal(journal)
        events = [r["ev"] for r in records]
        assert events.count("snapshot") >= 1
        assert events[-1] == "campaign_end"
