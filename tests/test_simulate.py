"""Tests for the replay simulator — independent timing reconstruction."""

import pytest

from repro import HEFT, ILHA, Platform, validate_schedule
from repro.core import SchedulingError
from repro.graphs import laplace_graph, layered_random, lu_graph, toy_graph
from repro.heuristics import CPOP, RandomMapper
from repro.simulate import extract_decisions, replay, replay_schedule


class TestExtractDecisions:
    def test_orders_cover_everything(self, paper_platform):
        sched = HEFT().run(lu_graph(6), paper_platform, "one-port")
        dec = extract_decisions(sched)
        assert set(dec.alloc) == set(sched.graph.tasks())
        placed = sum(len(v) for v in dec.proc_order.values())
        assert placed == sched.graph.num_tasks
        assert len(dec.hops) == sched.num_comms()

    def test_orders_sorted_by_time(self, paper_platform):
        sched = HEFT().run(lu_graph(6), paper_platform, "one-port")
        dec = extract_decisions(sched)
        for proc, tasks in dec.proc_order.items():
            starts = [sched.start_of(t) for t in tasks]
            assert starts == sorted(starts)


class TestExtractDeterminism:
    """Two schedules with identical content but different event/placement
    insertion order must extract byte-identical decisions — simultaneous
    transfers tie-break on the full deterministic key, not list order."""

    def _permuted_copy(self, sched):
        from repro.core import Schedule

        dup = Schedule(
            sched.graph, sched.platform, model=sched.model, heuristic=sched.heuristic
        )
        items = list(sched.placements.items())
        dup.placements = dict(reversed(items))
        dup.comm_events = list(reversed(sched.comm_events))
        return dup

    def test_permuted_schedule_extracts_identical_decisions(self, paper_platform):
        sched = ILHA(b=4).run(lu_graph(8), paper_platform, "one-port")
        a = extract_decisions(sched)
        b = extract_decisions(self._permuted_copy(sched))
        assert a.alloc == b.alloc
        assert a.proc_order == b.proc_order
        assert a.send_order == b.send_order
        assert a.recv_order == b.recv_order
        assert list(a.hops.items()) == list(b.hops.items())

    def test_simultaneous_transfers_tie_break_deterministically(self):
        """Equal-time transfers between disjoint processor pairs used to
        keep their insertion order; now they sort by the full key."""
        from repro.core import Platform, Schedule, TaskGraph

        g = TaskGraph.from_specs(
            [("a", 1.0), ("b", 1.0), ("c", 0.0), ("d", 0.0)],
            [("a", "c", 2.0), ("b", "d", 2.0)],
        )
        plat = Platform.homogeneous(4)
        base = dict(model="one-port", heuristic="by-hand")
        forward = Schedule(g, plat, **base)
        for t, p in (("a", 0), ("b", 1), ("c", 2), ("d", 3)):
            forward.place(t, p, 0.0 if t in "ab" else 3.0, 1.0 if t in "ab" else 3.0)
        forward.record_comm("a", "c", 0, 2, 1.0, 2.0, 2.0)
        forward.record_comm("b", "d", 1, 3, 1.0, 2.0, 2.0)
        backward = Schedule(g, plat, **base)
        backward.placements = dict(forward.placements)
        backward.comm_events = list(reversed(forward.comm_events))

        a = extract_decisions(forward)
        b = extract_decisions(backward)
        assert list(a.hops) == list(b.hops)
        assert a.send_order == b.send_order
        assert a.recv_order == b.recv_order


class TestReplayCrossCheck:
    """The central property: replaying any heuristic's decisions yields a
    valid schedule that is no worse."""

    SCHEDULERS = [
        HEFT(),
        HEFT(insertion=False),
        ILHA(b=4),
        ILHA(b=10, single_comm_scan=True),
        CPOP(),
        RandomMapper(seed=5),
    ]

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: f"{s.name}")
    @pytest.mark.parametrize(
        "graph",
        [lu_graph(6), laplace_graph(5), toy_graph(), layered_random(4, 4, seed=9)],
        ids=["lu", "laplace", "toy", "random"],
    )
    def test_replay_valid_and_no_worse(self, scheduler, graph, paper_platform):
        original = scheduler.run(graph, paper_platform, "one-port")
        replayed = replay_schedule(original)
        validate_schedule(replayed)
        assert replayed.is_complete()
        assert replayed.makespan() <= original.makespan() + 1e-6

    def test_replay_preserves_decisions(self, paper_platform):
        g = lu_graph(6)
        original = HEFT().run(g, paper_platform, "one-port")
        replayed = replay_schedule(original)
        for t in g.tasks():
            assert replayed.proc_of(t) == original.proc_of(t)
        assert replayed.num_comms() == original.num_comms()

    def test_replay_starts_never_later(self, paper_platform):
        g = laplace_graph(5)
        original = ILHA(b=6).run(g, paper_platform, "one-port")
        replayed = replay_schedule(original)
        for t in g.tasks():
            assert replayed.start_of(t) <= original.start_of(t) + 1e-6

    def test_replay_idempotent(self, paper_platform):
        g = lu_graph(5)
        once = replay_schedule(HEFT().run(g, paper_platform, "one-port"))
        twice = replay_schedule(once)
        for t in g.tasks():
            assert twice.start_of(t) == pytest.approx(once.start_of(t))
        assert twice.makespan() == pytest.approx(once.makespan())

    def test_heft_is_already_tight_on_chains(self, paper_platform):
        """On a pure chain there is no slack for the replay to recover."""
        from repro.core import TaskGraph

        g = TaskGraph()
        prev = None
        for i in range(6):
            g.add_task(i, 2.0)
            if prev is not None:
                g.add_dependency(prev, i, 1.0)
            prev = i
        original = HEFT().run(g, paper_platform, "one-port")
        replayed = replay_schedule(original)
        assert replayed.makespan() == pytest.approx(original.makespan())


class TestNoTighten:
    """``tighten=False`` must validate the original times and return
    them unchanged — not silently tighten under the original label."""

    def test_returns_original_times_and_label(self, paper_platform):
        g = lu_graph(6)
        original = ILHA(b=4).run(g, paper_platform, "one-port")
        checked = replay_schedule(original, tighten=False)
        assert checked.heuristic == original.heuristic
        assert checked.makespan() == pytest.approx(original.makespan())
        for t in g.tasks():
            assert checked.start_of(t) == original.start_of(t)
            assert checked.proc_of(t) == original.proc_of(t)
        assert checked.comm_events == original.comm_events

    def test_keeps_slack_that_tighten_removes(self):
        """On a schedule with recoverable slack the two modes differ."""
        from repro.core import Schedule, TaskGraph

        g = TaskGraph()
        g.add_task("a", 2.0)
        g.add_task("b", 2.0)
        g.add_dependency("a", "b", 0.0)
        plat = Platform.homogeneous(1)
        slack = Schedule(g, plat, model="one-port", heuristic="by-hand")
        slack.place("a", 0, 0.0, 2.0)
        slack.place("b", 0, 5.0, 7.0)  # 3 units of idle slack before b
        tightened = replay_schedule(slack, tighten=True)
        untouched = replay_schedule(slack, tighten=False)
        assert tightened.start_of("b") == pytest.approx(2.0)
        assert tightened.makespan() == pytest.approx(4.0)
        assert untouched.start_of("b") == pytest.approx(5.0)
        assert untouched.makespan() == pytest.approx(7.0)

    def test_infeasible_original_times_rejected(self, paper_platform):
        """Times below the least feasible solution of the schedule's own
        decisions must raise instead of being returned as 'validated'.

        The perturbation is kept small enough not to reorder any
        resource (so the extracted decisions stay identical) but pushes
        one already-tight task below its least start."""
        from repro.core.schedule import TaskPlacement

        g = lu_graph(5)
        sched = HEFT().run(g, paper_platform, "one-port")
        tight = replay_schedule(sched)
        placement = None
        for p in sorted(sched.placements.values(), key=lambda p: -p.start):
            if p.start > 0 and tight.start_of(p.task) == pytest.approx(p.start):
                row = sched.tasks_on(p.proc)
                i = row.index(p)
                gap = p.start - (row[i - 1].start if i else 0.0)
                if gap > 1e-6:
                    placement, shift = p, gap / 2
                    break
        assert placement is not None, "no tight, shiftable task found"
        sched.placements[placement.task] = TaskPlacement(
            placement.task,
            placement.proc,
            placement.start - shift,
            placement.finish - shift,
        )
        with pytest.raises(SchedulingError, match="least feasible"):
            replay_schedule(sched, tighten=False)

    def test_returned_copy_is_independent(self, paper_platform):
        g = lu_graph(5)
        original = HEFT().run(g, paper_platform, "one-port")
        checked = replay_schedule(original, tighten=False)
        checked.placements.clear()
        assert original.is_complete()


class TestReplayErrors:
    def test_missing_task_rejected(self, paper_platform):
        sched = HEFT().run(lu_graph(4), paper_platform, "one-port")
        dec = extract_decisions(sched)
        del dec.alloc[("p", 1)]
        with pytest.raises(SchedulingError, match="missing task"):
            replay(sched.graph, paper_platform, dec)

    def test_local_edge_with_transfer_rejected(self):
        from repro.core import TaskGraph
        from repro.simulate import ReplayDecisions

        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        plat = Platform.homogeneous(2)
        dec = ReplayDecisions(
            alloc={"u": 0, "v": 0},
            proc_order={0: ["u", "v"], 1: []},
            send_order={0: [("u", "v", 0)], 1: []},
            recv_order={0: [], 1: [("u", "v", 0)]},
            hops={("u", "v", 0): (0, 1)},
        )
        with pytest.raises(SchedulingError, match="local but has transfers"):
            replay(g, plat, dec)

    def test_remote_edge_without_transfer_rejected(self):
        from repro.core import TaskGraph
        from repro.simulate import ReplayDecisions

        g = TaskGraph()
        g.add_task("u", 1.0)
        g.add_task("v", 1.0)
        g.add_dependency("u", "v", 2.0)
        plat = Platform.homogeneous(2)
        dec = ReplayDecisions(
            alloc={"u": 0, "v": 1},
            proc_order={0: ["u"], 1: ["v"]},
            send_order={0: [], 1: []},
            recv_order={0: [], 1: []},
        )
        with pytest.raises(SchedulingError, match="no transfer"):
            replay(g, plat, dec)

    def test_inconsistent_orders_rejected(self):
        """Circular resource orders must be detected, not looped over."""
        from repro.core import TaskGraph
        from repro.simulate import ReplayDecisions

        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_dependency("a", "b", 0.0)
        plat = Platform.homogeneous(1)
        dec = ReplayDecisions(
            alloc={"a": 0, "b": 0},
            proc_order={0: ["b", "a"]},  # contradicts the precedence a->b
            send_order={0: []},
            recv_order={0: []},
        )
        with pytest.raises(SchedulingError, match="cycle"):
            replay(g, plat, dec)
